#include "sim/system.hh"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "dram/dram_backend.hh"
#include "mem/net_backend.hh"
#include "util/bitops.hh"
#include "util/debug.hh"
#include "util/logging.hh"

namespace fp::sim
{

/** Adapter: LLC misses into the ORAM controller. */
class System::OramSink : public workload::MemorySink
{
  public:
    explicit OramSink(core::OramController &ctrl) : ctrl_(ctrl) {}

    bool canAccept() const override { return ctrl_.canAccept(); }

    bool
    access(const workload::MemRequest &req,
           ResponseFn on_response) override
    {
        auto op = req.isWrite ? oram::Op::write : oram::Op::read;
        std::uint64_t id = ctrl_.request(
            op, req.addr, {},
            [cb = std::move(on_response)](
                Tick t, const std::vector<std::uint8_t> &) {
                cb(t);
            });
        return id != 0;
    }

  private:
    core::OramController &ctrl_;
};

/** Adapter: LLC misses into the shard dispatcher. A false return
 *  (home-shard window full or its controller busy) is the same
 *  retry-later signal a busy single controller gives. */
class System::ShardedSink : public workload::MemorySink
{
  public:
    explicit ShardedSink(core::ShardedOram &sharded)
        : sharded_(sharded)
    {
    }

    bool canAccept() const override { return sharded_.canAccept(); }

    bool
    access(const workload::MemRequest &req,
           ResponseFn on_response) override
    {
        auto op = req.isWrite ? oram::Op::write : oram::Op::read;
        std::uint64_t id = sharded_.request(
            op, req.addr, {},
            [cb = std::move(on_response)](
                Tick t, const std::vector<std::uint8_t> &) {
                cb(t);
            });
        return id != 0;
    }

  private:
    core::ShardedOram &sharded_;
};

/** Adapter: the insecure baseline, one burst per miss, straight at
 *  the memory backend. */
class System::InsecureSink : public workload::MemorySink
{
  public:
    InsecureSink(mem::MemoryBackend &backend,
                 std::uint64_t block_bytes,
                 std::size_t max_outstanding)
        : backend_(backend), blockBytes_(block_bytes),
          maxOutstanding_(max_outstanding)
    {
    }

    bool canAccept() const override
    {
        return outstanding_ < maxOutstanding_;
    }

    bool
    access(const workload::MemRequest &req,
           ResponseFn on_response) override
    {
        if (!canAccept())
            return false;
        ++outstanding_;
        mem::BackendRequest breq;
        breq.addr = req.addr * blockBytes_;
        breq.isWrite = req.isWrite;
        breq.bytes = backend_.burstBytes();
        breq.onComplete = [this, cb = std::move(on_response)](Tick t) {
            --outstanding_;
            cb(t);
        };
        backend_.access(std::move(breq));
        return true;
    }

  private:
    mem::MemoryBackend &backend_;
    std::uint64_t blockBytes_;
    std::size_t maxOutstanding_;
    std::size_t outstanding_ = 0;
};

System::System(const SimConfig &cfg,
               std::vector<workload::WorkloadProfile> profiles)
    : cfg_(cfg)
{
    fp_assert(profiles.size() == cfg.cores,
              "System: %zu profiles for %u cores", profiles.size(),
              cfg.cores);

    // Every StatGroup constructed below registers with this System's
    // registry, not a global one: the scope makes registry_ the
    // thread's current registry for the duration of construction.
    StatRegistry::Scope stat_scope(registry_);

    // Debug lines from this System's components are prefixed with
    // this event queue's clock (thread-local, so concurrent Systems
    // on worker threads each see their own clock).
    setDebugTickSource(eq_.nowPtr());

    if (cfg_.obs.traceEnabled()) {
        tracer_ = std::make_unique<obs::Tracer>(
            cfg_.obs.traceOut, cfg_.obs.traceLevel, eq_.nowPtr());
    }
    if (cfg_.obs.statsEnabled()) {
        intervalStats_ = std::make_unique<obs::IntervalStats>(
            cfg_.obs.statsOut, cfg_.obs.statsIntervalTicks,
            registry_);
    }
    if (cfg_.obs.profilingEnabled() && !cfg_.insecure &&
        cfg_.shards <= 1) {
        // The profiler tracks ORAM pipeline milestones, so insecure
        // runs (no controller) have nothing for it to measure.
        // Sharded runs carry one profiler per shard instead (rolled
        // up into the RunResult after the run).
        profiler_ = std::make_unique<obs::RequestProfiler>(
            eq_.nowPtr(), cfg_.controller.bucketBytes());
        if (tracer_)
            profiler_->setTracer(tracer_.get());
    }

    if (cfg_.shards > 1) {
        if (cfg_.insecure)
            fp_fatal("--shards requires the ORAM path: the insecure "
                     "baseline has no controller to shard");
        buildSharded();
    } else {
        buildSingle();
    }

    // Disjoint per-core address regions (shared for PARSEC mode),
    // spaced by the largest working set.
    std::uint64_t spacing = 1;
    for (const auto &p : profiles)
        spacing = std::max(spacing, p.workingSetBlocks);
    spacing = roundUpPow2(spacing, std::uint64_t{1} << 12);

    for (unsigned c = 0; c < cfg_.cores; ++c) {
        workload::CoreParams cp;
        cp.coreId = c;
        cp.cpuPeriodTicks = cfg_.cpuPeriodTicks;
        cp.maxOutstanding = cfg_.maxOutstanding;
        cp.totalRequests = cfg_.requestsPerCore;
        BlockAddr base =
            cfg_.sharedAddressSpace ? 0 : spacing * 2 * c;
        cores_.push_back(std::make_unique<workload::CoreModel>(
            cp, profiles[c], base, cfg_.seed + c * 0x9111, eq_,
            *sink_));
    }
}

System::~System()
{
    clearDebugTickSource(eq_.nowPtr());
}

void
System::buildSingle()
{
    if (cfg_.backendKind == BackendKind::dram) {
        dram_ = std::make_unique<dram::DramSystem>(cfg_.dram, eq_);
        backend_ = std::make_unique<dram::DramBackend>(*dram_);
    } else {
        backend_ = std::make_unique<mem::NetBackend>(cfg_.net, eq_);
    }

    // Optional resilience stack: store <- injector <- retry layer.
    topBackend_ = backend_.get();
    if (cfg_.faults.enabled()) {
        injector_ = std::make_unique<mem::FaultInjector>(
            cfg_.faults, eq_, *topBackend_);
        topBackend_ = injector_.get();
        // Injecting faults without a retry policy would wedge the run
        // on the first lost request; pick a deadline comfortably
        // above the store's worst case unless the user chose one.
        if (!cfg_.retry.enabled()) {
            cfg_.retry.timeoutUs =
                cfg_.backendKind == BackendKind::net
                    ? std::max(10.0 * 2.0 * cfg_.net.oneWayLatencyUs,
                               1000.0)
                    : 100.0;
        }
    }
    if (cfg_.retry.enabled()) {
        resilient_ = std::make_unique<mem::ResilientBackend>(
            cfg_.retry, eq_, *topBackend_);
        topBackend_ = resilient_.get();
    }
    if (tracer_)
        topBackend_->setTracer(tracer_.get());
    if (profiler_)
        topBackend_->setProfiler(profiler_.get());

    if (cfg_.insecure) {
        // The insecure baseline's MSHR-equivalent depth scales with
        // the core count (per-core maxOutstanding each): 64 at the
        // Table-1 default of 16 outstanding x 4 cores.
        sink_ = std::make_unique<InsecureSink>(
            *topBackend_, cfg_.controller.blockPhysBytes,
            std::size_t{cfg_.maxOutstanding} * cfg_.cores);
    } else {
        ctrl_ = std::make_unique<core::OramController>(
            cfg_.controller, eq_, *topBackend_);
        if (tracer_)
            ctrl_->setTracer(tracer_.get());
        if (profiler_)
            ctrl_->setProfiler(profiler_.get());
        sink_ = std::make_unique<OramSink>(*ctrl_);
    }
}

void
System::buildSharded()
{
    // The auto retry deadline is shared by every shard (each shard's
    // store has the same worst case), so pick it once up front, as
    // the single path does.
    if (cfg_.faults.enabled() && !cfg_.retry.enabled()) {
        cfg_.retry.timeoutUs =
            cfg_.backendKind == BackendKind::net
                ? std::max(10.0 * 2.0 * cfg_.net.oneWayLatencyUs,
                           1000.0)
                : 100.0;
    }

    shardParts_.resize(cfg_.shards);
    std::vector<mem::MemoryBackend *> tops;
    tops.reserve(cfg_.shards);
    for (unsigned s = 0; s < cfg_.shards; ++s) {
        ShardParts &sp = shardParts_[s];
        const std::string prefix = "s" + std::to_string(s) + ".";
        // Every StatGroup this shard's stack constructs gets the
        // "s<N>." name prefix (the dispatcher prefixes its controller
        // stacks the same way), keeping interval-stats keys unique.
        StatNameScope scope(prefix);

        if (tracer_) {
            // Same trace file; tracks land at tid 32 * shard + base
            // with "s<N>."-prefixed names ("s1.controller", ...).
            sp.tracerView = tracer_->makeView(32 * s, prefix);
        }
        if (cfg_.obs.profilingEnabled()) {
            sp.profiler = std::make_unique<obs::RequestProfiler>(
                eq_.nowPtr(), cfg_.controller.bucketBytes());
            if (sp.tracerView)
                sp.profiler->setTracer(sp.tracerView.get());
        }

        // Each shard owns a complete store: its own DRAM channels or
        // its own network pipe. Decorators stack per shard so faults
        // and retries are independent across shards too.
        if (cfg_.backendKind == BackendKind::dram) {
            sp.dram =
                std::make_unique<dram::DramSystem>(cfg_.dram, eq_);
            sp.backend = std::make_unique<dram::DramBackend>(*sp.dram);
        } else {
            sp.backend =
                std::make_unique<mem::NetBackend>(cfg_.net, eq_);
        }
        sp.top = sp.backend.get();
        if (cfg_.faults.enabled()) {
            // Derived per-shard fault seed: shards must not replay
            // one another's fault decisions in lockstep.
            mem::FaultParams fparams = cfg_.faults;
            fparams.seed = core::ShardedOram::shardSeed(
                cfg_.faults.seed ^ 0xf417ULL, s);
            sp.injector = std::make_unique<mem::FaultInjector>(
                fparams, eq_, *sp.top);
            sp.top = sp.injector.get();
        }
        if (cfg_.retry.enabled()) {
            sp.resilient = std::make_unique<mem::ResilientBackend>(
                cfg_.retry, eq_, *sp.top);
            sp.top = sp.resilient.get();
        }
        if (sp.tracerView)
            sp.top->setTracer(sp.tracerView.get());
        if (sp.profiler)
            sp.top->setProfiler(sp.profiler.get());
        tops.push_back(sp.top);
    }

    core::ShardedOramParams sop;
    sop.shards = cfg_.shards;
    sop.shardWindow = cfg_.shardWindow;
    sharded_ = std::make_unique<core::ShardedOram>(
        sop, cfg_.controller, eq_, tops);
    for (unsigned s = 0; s < cfg_.shards; ++s) {
        if (shardParts_[s].tracerView)
            sharded_->shard(s).setTracer(
                shardParts_[s].tracerView.get());
        if (shardParts_[s].profiler)
            sharded_->shard(s).setProfiler(
                shardParts_[s].profiler.get());
    }
    sink_ = std::make_unique<ShardedSink>(*sharded_);
}

void
System::printStats(std::ostream &os)
{
    if (ctrl_) {
        ctrl_->stats().print(os);
        ctrl_->store().stats().print(os);
    }
    if (sharded_) {
        sharded_->stats().print(os);
        for (unsigned s = 0; s < sharded_->numShards(); ++s) {
            sharded_->shard(s).stats().print(os);
            sharded_->shard(s).store().stats().print(os);
            ShardParts &sp = shardParts_[s];
            if (sp.dram) {
                for (unsigned c = 0; c < sp.dram->numChannels(); ++c)
                    sp.dram->channel(c).stats().print(os);
            } else if (auto *net = dynamic_cast<mem::NetBackend *>(
                           sp.backend.get())) {
                net->stats().print(os);
            }
            if (sp.injector)
                sp.injector->stats().print(os);
            if (sp.resilient)
                sp.resilient->stats().print(os);
        }
    }
    if (dram_) {
        for (unsigned c = 0; c < dram_->numChannels(); ++c)
            dram_->channel(c).stats().print(os);
    } else if (auto *net =
                   dynamic_cast<mem::NetBackend *>(backend_.get())) {
        net->stats().print(os);
    }
    if (injector_)
        injector_->stats().print(os);
    if (resilient_)
        resilient_->stats().print(os);
}

bool
System::resilienceConfigured() const
{
    if (injector_ || resilient_)
        return true;
    for (const ShardParts &sp : shardParts_)
        if (sp.injector || sp.resilient)
            return true;
    return false;
}

bool
System::allDone() const
{
    return std::all_of(cores_.begin(), cores_.end(),
                       [](const auto &c) { return c->done(); });
}

RunResult
System::run(Tick limit)
{
    for (auto &core : cores_)
        core->start();

    if (intervalStats_) {
        // The sampling chain is passive (reads registered stats) and
        // ends itself once the cores finish, so it neither perturbs
        // results nor trips the deadlock assert below.
        intervalStats_->sample(eq_.now());
        intervalStats_->start(eq_, [this] { return !allDone(); });
    }

    bool hit_limit = false;
    bool failed = false;
    std::string failure_msg;
    const auto drive = [&] {
        while (!allDone()) {
            if (eq_.now() > limit) {
                // Truncate rather than abort: the partial run is
                // still a valid (if incomplete) measurement, and a
                // sweep wants an answer for this point, not a dead
                // process.
                hit_limit = true;
                break;
            }
            bool progressed = eq_.step();
            fp_assert(progressed || allDone(),
                      "deadlock: no events but cores unfinished");
        }
    };
    if (resilienceConfigured()) {
        // A run configured to be hostile is allowed to fail: the
        // resilience stack escalates an exhausted retry budget via
        // fp_panic, which the recoverable-failure scope converts to
        // a SimFailure captured in the result instead of an abort.
        ScopedRecoverableFailures recover;
        try {
            drive();
        } catch (const SimFailure &e) {
            failed = true;
            failure_msg = e.what();
        }
    } else {
        drive();
    }

    RunResult r;
    r.hitTickLimit = hit_limit;
    r.failed = failed;
    r.failureMessage = failure_msg;
    for (const auto &core : cores_) {
        r.executionTicks = std::max(r.executionTicks,
                                    core->finishTick());
        r.llcRequests += core->issued();
    }
    if (hit_limit || failed) {
        // Unfinished cores report finishTick() == 0; the truncation
        // (or failure) point is the honest execution time.
        r.executionTicks = std::max(r.executionTicks, eq_.now());
    }

    if (ctrl_) {
        r.avgLlcLatencyNs = ctrl_->oramLatency().mean();
        r.avgReadPathLen = ctrl_->avgReadPathLength();
        r.avgDramBucketsRead = ctrl_->avgDramBucketsRead();
        r.avgDramServiceNs = ctrl_->avgDramServiceNs();
        r.realAccesses = ctrl_->realAccesses();
        r.dummyAccesses = ctrl_->dummyAccessesRun();
        r.dummyReplacements = ctrl_->dummyReplacements();
        r.pendingSwaps = ctrl_->pendingSwaps();
        r.mergedLevelsSkipped = ctrl_->mergedLevelsSkipped();
        r.mergeSkipsPerLevel = ctrl_->mergeSkipsPerLevel();
        r.stashShortcuts = ctrl_->stashShortcuts();
        r.stashPeak = ctrl_->stash().peakSize();
        r.stashOverflows = ctrl_->stash().overflowEvents();
        r.controllerEnergyNj = controllerEnergyNj(*ctrl_, eq_.now());
        if (auto *mac = ctrl_->mac()) {
            r.cacheHits = mac->hits();
            r.cacheMisses = mac->misses();
        } else {
            r.cacheHits = ctrl_->onChipBucketReads();
        }
    } else if (sharded_) {
        // Cross-shard aggregation. Histograms and Averages merge (so
        // means weight shards by how many accesses each served),
        // counters sum, the stash peak is the worst shard's.
        r.shards = sharded_->numShards();
        r.shardWindow = cfg_.shardWindow;
        r.shardWindowRejects = sharded_->windowRejects();
        r.shardBusyRejects = sharded_->busyRejects();

        fp::Histogram latency = sharded_->shard(0).oramLatency();
        fp::Average read_len, dram_read_len, dram_service;
        std::vector<std::uint64_t> skips;
        for (unsigned s = 0; s < r.shards; ++s) {
            const core::OramController &sc = sharded_->shard(s);
            if (s > 0)
                latency.merge(sc.oramLatency());
            read_len.merge(sc.readPathLengthStat());
            dram_read_len.merge(sc.dramBucketsReadStat());
            dram_service.merge(sc.dramServiceStat());

            r.realAccesses += sc.realAccesses();
            r.dummyAccesses += sc.dummyAccessesRun();
            r.dummyReplacements += sc.dummyReplacements();
            r.pendingSwaps += sc.pendingSwaps();
            r.mergedLevelsSkipped += sc.mergedLevelsSkipped();
            r.stashShortcuts += sc.stashShortcuts();

            const auto &per_level = sc.mergeSkipsPerLevel();
            if (skips.size() < per_level.size())
                skips.resize(per_level.size(), 0);
            for (std::size_t l = 0; l < per_level.size(); ++l)
                skips[l] += per_level[l];

            core::OramController &scm = sharded_->shard(s);
            r.stashPeak =
                std::max(r.stashPeak, scm.stash().peakSize());
            r.stashOverflows += scm.stash().overflowEvents();
            r.controllerEnergyNj +=
                controllerEnergyNj(sc, eq_.now());
            if (auto *mac = scm.mac()) {
                r.cacheHits += mac->hits();
                r.cacheMisses += mac->misses();
            } else {
                r.cacheHits += sc.onChipBucketReads();
            }

            r.shardDispatched.push_back(sharded_->dispatched(s));
            r.shardRealAccesses.push_back(sc.realAccesses());
            r.shardDummyAccesses.push_back(sc.dummyAccessesRun());
            r.shardAvgLlcLatencyNs.push_back(
                sc.oramLatency().mean());
        }
        r.avgLlcLatencyNs = latency.mean();
        r.avgReadPathLen = read_len.mean();
        r.avgDramBucketsRead = dram_read_len.mean();
        r.avgDramServiceNs = dram_service.mean();
        r.mergeSkipsPerLevel = std::move(skips);
    } else {
        // Insecure runs: "latency" is the cores' observed miss time.
        double sum = 0.0;
        std::uint64_t n = 0;
        for (const auto &core : cores_) {
            sum += core->missLatency().mean() *
                   static_cast<double>(core->missLatency().count());
            n += core->missLatency().count();
        }
        r.avgLlcLatencyNs = n ? sum / static_cast<double>(n) : 0.0;
    }

    if (dram_) {
        r.rowHits = dram_->rowHits();
        r.rowMisses = dram_->rowMisses();
        r.dramEnergyNj = dram_->energy(eq_.now()).total();
    }
    for (const ShardParts &sp : shardParts_) {
        if (sp.dram) {
            r.rowHits += sp.dram->rowHits();
            r.rowMisses += sp.dram->rowMisses();
            r.dramEnergyNj += sp.dram->energy(eq_.now()).total();
        }
    }
    r.faultsEnabled = injector_ != nullptr;
    r.retryEnabled = resilient_ != nullptr;
    if (injector_) {
        r.faultLossInjected = injector_->lossInjected();
        r.faultErrorInjected = injector_->errorInjected();
        r.faultSpikeInjected = injector_->spikeInjected();
        r.faultOutageDropped = injector_->outageDropped();
    }
    if (resilient_) {
        r.retryAttempts = resilient_->retries();
        r.retryTimeouts = resilient_->timeouts();
        r.retryDedupDropped = resilient_->dedupDropped();
        r.retryExhausted = resilient_->exhausted();
        r.retryMaxAttempts = resilient_->maxAttempts();
    }
    for (const ShardParts &sp : shardParts_) {
        if (sp.injector) {
            r.faultsEnabled = true;
            r.faultLossInjected += sp.injector->lossInjected();
            r.faultErrorInjected += sp.injector->errorInjected();
            r.faultSpikeInjected += sp.injector->spikeInjected();
            r.faultOutageDropped += sp.injector->outageDropped();
        }
        if (sp.resilient) {
            r.retryEnabled = true;
            r.retryAttempts += sp.resilient->retries();
            r.retryTimeouts += sp.resilient->timeouts();
            r.retryDedupDropped += sp.resilient->dedupDropped();
            r.retryExhausted += sp.resilient->exhausted();
            r.retryMaxAttempts = std::max(
                r.retryMaxAttempts, sp.resilient->maxAttempts());
        }
    }
    if (ctrl_)
        r.reqStreamFingerprint = ctrl_->reqStreamFingerprint();
    else if (sharded_)
        r.reqStreamFingerprint = sharded_->reqStreamFingerprint();

    if (profiler_) {
        r.profiled = true;
        r.profiledRequests = profiler_->completed();
        r.profileStages = profiler_->stageSummaries();
        r.profileEffectiveness = profiler_->effectiveness();
        if (!cfg_.obs.profileOut.empty()) {
            std::ofstream out(cfg_.obs.profileOut);
            if (!out) {
                fp_fatal("cannot open --profile-out file '%s'",
                         cfg_.obs.profileOut.c_str());
            }
            out << profiler_->reportJson() << '\n';
        }
    } else if (!shardParts_.empty() && shardParts_[0].profiler) {
        // Roll the per-shard profilers up into one report. The
        // aggregate profiler is scratch: a throwaway registry keeps
        // its StatGroup out of this System's registry (the per-shard
        // "s<N>.request_profiler" groups are the live ones).
        StatRegistry tmp;
        StatRegistry::Scope tmp_scope(tmp);
        obs::RequestProfiler agg(eq_.nowPtr(),
                                 cfg_.controller.bucketBytes());
        for (const ShardParts &sp : shardParts_)
            agg.merge(*sp.profiler);
        r.profiled = true;
        r.profiledRequests = agg.completed();
        r.profileStages = agg.stageSummaries();
        r.profileEffectiveness = agg.effectiveness();
        if (!cfg_.obs.profileOut.empty()) {
            std::ofstream out(cfg_.obs.profileOut);
            if (!out) {
                fp_fatal("cannot open --profile-out file '%s'",
                         cfg_.obs.profileOut.c_str());
            }
            out << agg.reportJson() << '\n';
        }
    }

    if (backend_) {
        r.backendKind = backend_->kind();
        const mem::BackendStats bs = backend_->statsSnapshot();
        r.backendReadBursts = bs.readBursts;
        r.backendWriteBursts = bs.writeBursts;
        r.backendBytesRead = bs.bytesRead;
        r.backendBytesWritten = bs.bytesWritten;
        r.backendAvgLatencyNs = bs.avgLatencyNs;
    } else if (!shardParts_.empty()) {
        // Burst-weighted aggregate over the per-shard base stores.
        double weighted_ns = 0.0;
        std::uint64_t bursts = 0;
        r.backendKind = shardParts_[0].backend->kind();
        for (const ShardParts &sp : shardParts_) {
            const mem::BackendStats bs = sp.backend->statsSnapshot();
            r.backendReadBursts += bs.readBursts;
            r.backendWriteBursts += bs.writeBursts;
            r.backendBytesRead += bs.bytesRead;
            r.backendBytesWritten += bs.bytesWritten;
            const std::uint64_t n = bs.readBursts + bs.writeBursts;
            weighted_ns += bs.avgLatencyNs * static_cast<double>(n);
            bursts += n;
        }
        if (bursts)
            r.backendAvgLatencyNs =
                weighted_ns / static_cast<double>(bursts);
    }

    if (intervalStats_) {
        // Flush the final partial interval (skipped when the run ends
        // exactly on a sample tick, which would emit a duplicate) and
        // seal the file.
        intervalStats_->finish(eq_.now());
    }
    if (tracer_)
        tracer_->finish();
    return r;
}

} // namespace fp::sim
