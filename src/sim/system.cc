#include "sim/system.hh"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "dram/dram_backend.hh"
#include "mem/net_backend.hh"
#include "util/bitops.hh"
#include "util/debug.hh"
#include "util/logging.hh"

namespace fp::sim
{

/** Adapter: LLC misses into the ORAM controller. */
class System::OramSink : public workload::MemorySink
{
  public:
    explicit OramSink(core::OramController &ctrl) : ctrl_(ctrl) {}

    bool canAccept() const override { return ctrl_.canAccept(); }

    bool
    access(const workload::MemRequest &req,
           ResponseFn on_response) override
    {
        auto op = req.isWrite ? oram::Op::write : oram::Op::read;
        std::uint64_t id = ctrl_.request(
            op, req.addr, {},
            [cb = std::move(on_response)](
                Tick t, const std::vector<std::uint8_t> &) {
                cb(t);
            });
        return id != 0;
    }

  private:
    core::OramController &ctrl_;
};

/** Adapter: the insecure baseline, one burst per miss, straight at
 *  the memory backend. */
class System::InsecureSink : public workload::MemorySink
{
  public:
    InsecureSink(mem::MemoryBackend &backend,
                 std::uint64_t block_bytes,
                 std::size_t max_outstanding)
        : backend_(backend), blockBytes_(block_bytes),
          maxOutstanding_(max_outstanding)
    {
    }

    bool canAccept() const override
    {
        return outstanding_ < maxOutstanding_;
    }

    bool
    access(const workload::MemRequest &req,
           ResponseFn on_response) override
    {
        if (!canAccept())
            return false;
        ++outstanding_;
        mem::BackendRequest breq;
        breq.addr = req.addr * blockBytes_;
        breq.isWrite = req.isWrite;
        breq.bytes = backend_.burstBytes();
        breq.onComplete = [this, cb = std::move(on_response)](Tick t) {
            --outstanding_;
            cb(t);
        };
        backend_.access(std::move(breq));
        return true;
    }

  private:
    mem::MemoryBackend &backend_;
    std::uint64_t blockBytes_;
    std::size_t maxOutstanding_;
    std::size_t outstanding_ = 0;
};

System::System(const SimConfig &cfg,
               std::vector<workload::WorkloadProfile> profiles)
    : cfg_(cfg)
{
    fp_assert(profiles.size() == cfg.cores,
              "System: %zu profiles for %u cores", profiles.size(),
              cfg.cores);

    // Every StatGroup constructed below registers with this System's
    // registry, not a global one: the scope makes registry_ the
    // thread's current registry for the duration of construction.
    StatRegistry::Scope stat_scope(registry_);

    // Debug lines from this System's components are prefixed with
    // this event queue's clock (thread-local, so concurrent Systems
    // on worker threads each see their own clock).
    setDebugTickSource(eq_.nowPtr());

    if (cfg_.obs.traceEnabled()) {
        tracer_ = std::make_unique<obs::Tracer>(
            cfg_.obs.traceOut, cfg_.obs.traceLevel, eq_.nowPtr());
    }
    if (cfg_.obs.statsEnabled()) {
        intervalStats_ = std::make_unique<obs::IntervalStats>(
            cfg_.obs.statsOut, cfg_.obs.statsIntervalTicks,
            registry_);
    }
    if (cfg_.obs.profilingEnabled() && !cfg_.insecure) {
        // The profiler tracks ORAM pipeline milestones, so insecure
        // runs (no controller) have nothing for it to measure.
        profiler_ = std::make_unique<obs::RequestProfiler>(
            eq_.nowPtr(), cfg_.controller.bucketBytes());
        if (tracer_)
            profiler_->setTracer(tracer_.get());
    }

    if (cfg_.backendKind == BackendKind::dram) {
        dram_ = std::make_unique<dram::DramSystem>(cfg_.dram, eq_);
        backend_ = std::make_unique<dram::DramBackend>(*dram_);
    } else {
        backend_ = std::make_unique<mem::NetBackend>(cfg_.net, eq_);
    }

    // Optional resilience stack: store <- injector <- retry layer.
    topBackend_ = backend_.get();
    if (cfg_.faults.enabled()) {
        injector_ = std::make_unique<mem::FaultInjector>(
            cfg_.faults, eq_, *topBackend_);
        topBackend_ = injector_.get();
        // Injecting faults without a retry policy would wedge the run
        // on the first lost request; pick a deadline comfortably
        // above the store's worst case unless the user chose one.
        if (!cfg_.retry.enabled()) {
            cfg_.retry.timeoutUs =
                cfg_.backendKind == BackendKind::net
                    ? std::max(10.0 * 2.0 * cfg_.net.oneWayLatencyUs,
                               1000.0)
                    : 100.0;
        }
    }
    if (cfg_.retry.enabled()) {
        resilient_ = std::make_unique<mem::ResilientBackend>(
            cfg_.retry, eq_, *topBackend_);
        topBackend_ = resilient_.get();
    }
    if (tracer_)
        topBackend_->setTracer(tracer_.get());
    if (profiler_)
        topBackend_->setProfiler(profiler_.get());

    if (cfg_.insecure) {
        // The insecure baseline's MSHR-equivalent depth scales with
        // the core count (per-core maxOutstanding each): 64 at the
        // Table-1 default of 16 outstanding x 4 cores.
        sink_ = std::make_unique<InsecureSink>(
            *topBackend_, cfg_.controller.blockPhysBytes,
            std::size_t{cfg_.maxOutstanding} * cfg_.cores);
    } else {
        ctrl_ = std::make_unique<core::OramController>(
            cfg_.controller, eq_, *topBackend_);
        if (tracer_)
            ctrl_->setTracer(tracer_.get());
        if (profiler_)
            ctrl_->setProfiler(profiler_.get());
        sink_ = std::make_unique<OramSink>(*ctrl_);
    }

    // Disjoint per-core address regions (shared for PARSEC mode),
    // spaced by the largest working set.
    std::uint64_t spacing = 1;
    for (const auto &p : profiles)
        spacing = std::max(spacing, p.workingSetBlocks);
    spacing = roundUpPow2(spacing, std::uint64_t{1} << 12);

    for (unsigned c = 0; c < cfg_.cores; ++c) {
        workload::CoreParams cp;
        cp.coreId = c;
        cp.cpuPeriodTicks = cfg_.cpuPeriodTicks;
        cp.maxOutstanding = cfg_.maxOutstanding;
        cp.totalRequests = cfg_.requestsPerCore;
        BlockAddr base =
            cfg_.sharedAddressSpace ? 0 : spacing * 2 * c;
        cores_.push_back(std::make_unique<workload::CoreModel>(
            cp, profiles[c], base, cfg_.seed + c * 0x9111, eq_,
            *sink_));
    }
}

System::~System()
{
    clearDebugTickSource(eq_.nowPtr());
}

void
System::printStats(std::ostream &os)
{
    if (ctrl_) {
        ctrl_->stats().print(os);
        ctrl_->store().stats().print(os);
    }
    if (dram_) {
        for (unsigned c = 0; c < dram_->numChannels(); ++c)
            dram_->channel(c).stats().print(os);
    } else if (auto *net =
                   dynamic_cast<mem::NetBackend *>(backend_.get())) {
        net->stats().print(os);
    }
    if (injector_)
        injector_->stats().print(os);
    if (resilient_)
        resilient_->stats().print(os);
}

bool
System::allDone() const
{
    return std::all_of(cores_.begin(), cores_.end(),
                       [](const auto &c) { return c->done(); });
}

RunResult
System::run(Tick limit)
{
    for (auto &core : cores_)
        core->start();

    if (intervalStats_) {
        // The sampling chain is passive (reads registered stats) and
        // ends itself once the cores finish, so it neither perturbs
        // results nor trips the deadlock assert below.
        intervalStats_->sample(eq_.now());
        intervalStats_->start(eq_, [this] { return !allDone(); });
    }

    bool hit_limit = false;
    bool failed = false;
    std::string failure_msg;
    const auto drive = [&] {
        while (!allDone()) {
            if (eq_.now() > limit) {
                // Truncate rather than abort: the partial run is
                // still a valid (if incomplete) measurement, and a
                // sweep wants an answer for this point, not a dead
                // process.
                hit_limit = true;
                break;
            }
            bool progressed = eq_.step();
            fp_assert(progressed || allDone(),
                      "deadlock: no events but cores unfinished");
        }
    };
    if (injector_ || resilient_) {
        // A run configured to be hostile is allowed to fail: the
        // resilience stack escalates an exhausted retry budget via
        // fp_panic, which the recoverable-failure scope converts to
        // a SimFailure captured in the result instead of an abort.
        ScopedRecoverableFailures recover;
        try {
            drive();
        } catch (const SimFailure &e) {
            failed = true;
            failure_msg = e.what();
        }
    } else {
        drive();
    }

    RunResult r;
    r.hitTickLimit = hit_limit;
    r.failed = failed;
    r.failureMessage = failure_msg;
    for (const auto &core : cores_) {
        r.executionTicks = std::max(r.executionTicks,
                                    core->finishTick());
        r.llcRequests += core->issued();
    }
    if (hit_limit || failed) {
        // Unfinished cores report finishTick() == 0; the truncation
        // (or failure) point is the honest execution time.
        r.executionTicks = std::max(r.executionTicks, eq_.now());
    }

    if (ctrl_) {
        r.avgLlcLatencyNs = ctrl_->oramLatency().mean();
        r.avgReadPathLen = ctrl_->avgReadPathLength();
        r.avgDramBucketsRead = ctrl_->avgDramBucketsRead();
        r.avgDramServiceNs = ctrl_->avgDramServiceNs();
        r.realAccesses = ctrl_->realAccesses();
        r.dummyAccesses = ctrl_->dummyAccessesRun();
        r.dummyReplacements = ctrl_->dummyReplacements();
        r.pendingSwaps = ctrl_->pendingSwaps();
        r.mergedLevelsSkipped = ctrl_->mergedLevelsSkipped();
        r.mergeSkipsPerLevel = ctrl_->mergeSkipsPerLevel();
        r.stashShortcuts = ctrl_->stashShortcuts();
        r.stashPeak = ctrl_->stash().peakSize();
        r.stashOverflows = ctrl_->stash().overflowEvents();
        r.controllerEnergyNj = controllerEnergyNj(*ctrl_, eq_.now());
        if (auto *mac = ctrl_->mac()) {
            r.cacheHits = mac->hits();
            r.cacheMisses = mac->misses();
        } else {
            r.cacheHits = ctrl_->onChipBucketReads();
        }
    } else {
        // Insecure runs: "latency" is the cores' observed miss time.
        double sum = 0.0;
        std::uint64_t n = 0;
        for (const auto &core : cores_) {
            sum += core->missLatency().mean() *
                   static_cast<double>(core->missLatency().count());
            n += core->missLatency().count();
        }
        r.avgLlcLatencyNs = n ? sum / static_cast<double>(n) : 0.0;
    }

    if (dram_) {
        r.rowHits = dram_->rowHits();
        r.rowMisses = dram_->rowMisses();
        r.dramEnergyNj = dram_->energy(eq_.now()).total();
    }
    r.faultsEnabled = injector_ != nullptr;
    r.retryEnabled = resilient_ != nullptr;
    if (injector_) {
        r.faultLossInjected = injector_->lossInjected();
        r.faultErrorInjected = injector_->errorInjected();
        r.faultSpikeInjected = injector_->spikeInjected();
        r.faultOutageDropped = injector_->outageDropped();
    }
    if (resilient_) {
        r.retryAttempts = resilient_->retries();
        r.retryTimeouts = resilient_->timeouts();
        r.retryDedupDropped = resilient_->dedupDropped();
        r.retryExhausted = resilient_->exhausted();
        r.retryMaxAttempts = resilient_->maxAttempts();
    }
    if (ctrl_)
        r.reqStreamFingerprint = ctrl_->reqStreamFingerprint();

    if (profiler_) {
        r.profiled = true;
        r.profiledRequests = profiler_->completed();
        r.profileStages = profiler_->stageSummaries();
        r.profileEffectiveness = profiler_->effectiveness();
        if (!cfg_.obs.profileOut.empty()) {
            std::ofstream out(cfg_.obs.profileOut);
            if (!out) {
                fp_fatal("cannot open --profile-out file '%s'",
                         cfg_.obs.profileOut.c_str());
            }
            out << profiler_->reportJson() << '\n';
        }
    }

    r.backendKind = backend_->kind();
    const mem::BackendStats bs = backend_->statsSnapshot();
    r.backendReadBursts = bs.readBursts;
    r.backendWriteBursts = bs.writeBursts;
    r.backendBytesRead = bs.bytesRead;
    r.backendBytesWritten = bs.bytesWritten;
    r.backendAvgLatencyNs = bs.avgLatencyNs;

    if (intervalStats_) {
        // Flush the final partial interval (skipped when the run ends
        // exactly on a sample tick, which would emit a duplicate) and
        // seal the file.
        intervalStats_->finish(eq_.now());
    }
    if (tracer_)
        tracer_->finish();
    return r;
}

} // namespace fp::sim
