#include "sim/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/system.hh"
#include "util/logging.hh"
#include "workload/mixes.hh"
#include "workload/parsec_profiles.hh"

namespace fp::sim
{

namespace
{

/** Run one point with failure isolation; never throws. */
SweepOutcome
runPoint(const SweepPoint &p)
{
    SweepOutcome out;
    out.name = p.name;
    try {
        // While this guard lives, fp_assert/fp_panic/fp_fatal on this
        // thread throw SimFailure instead of killing the process.
        ScopedRecoverableFailures guard;
        System system(p.cfg, p.profiles);
        out.result = system.run(p.limit);
        out.ok = true;
    } catch (const std::exception &e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown exception";
    }
    return out;
}

} // anonymous namespace

SweepPoint
pointFromProfiles(std::string name, SimConfig cfg,
                  std::vector<workload::WorkloadProfile> profiles)
{
    SweepPoint p;
    p.name = std::move(name);
    p.cfg = std::move(cfg);
    p.profiles = std::move(profiles);
    return p;
}

SweepPoint
pointFromMix(std::string name, SimConfig cfg, const std::string &mix)
{
    auto profiles = workload::mixProfiles(mix);
    fp_assert(profiles.size() == cfg.cores,
              "mix %s has %zu members but config has %u cores",
              mix.c_str(), profiles.size(), cfg.cores);
    return pointFromProfiles(std::move(name), std::move(cfg),
                             std::move(profiles));
}

SweepPoint
pointFromParsec(std::string name, SimConfig cfg,
                const std::string &workload)
{
    cfg.sharedAddressSpace = true;
    auto profiles = workload::parsecThreads(workload, cfg.cores);
    return pointFromProfiles(std::move(name), std::move(cfg),
                             std::move(profiles));
}

SweepRunner::SweepRunner(SweepOptions opt) : opt_(std::move(opt)) {}

unsigned
SweepRunner::hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

unsigned
SweepRunner::effectiveJobs(std::size_t npoints) const
{
    unsigned jobs = opt_.jobs ? opt_.jobs : hardwareJobs();
    if (npoints < jobs)
        jobs = npoints ? static_cast<unsigned>(npoints) : 1;
    return jobs;
}

void
SweepRunner::dispatch(std::size_t total,
                      const std::function<void(std::size_t)> &run_one)
{
    const unsigned jobs = effectiveJobs(total);
    if (jobs <= 1) {
        // Inline on the calling thread: identical to the sequential
        // benches this runner replaced, byte for byte.
        for (std::size_t i = 0; i < total; ++i)
            run_one(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w) {
        workers.emplace_back([&] {
            for (;;) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= total)
                    return;
                run_one(i);
            }
        });
    }
    for (auto &t : workers)
        t.join();
}

std::vector<SweepOutcome>
SweepRunner::run(std::vector<SweepPoint> points)
{
    const std::size_t total = points.size();
    std::vector<SweepOutcome> outcomes(total);
    if (total == 0)
        return outcomes;

    std::mutex report_mutex;
    std::size_t done = 0;

    auto report = [&](const SweepOutcome &out, double secs) {
        std::lock_guard<std::mutex> lock(report_mutex);
        ++done;
        if (opt_.progress) {
            std::fprintf(stderr, "[%zu/%zu] %s %s(%.1fs)%s%s\n", done,
                         total, out.name.c_str(),
                         out.ok ? "" : "FAILED ", secs,
                         out.ok ? "" : ": ",
                         out.ok ? "" : out.error.c_str());
        }
        if (opt_.onPointDone)
            opt_.onPointDone(out, done, total);
    };

    dispatch(total, [&](std::size_t i) {
        auto t0 = std::chrono::steady_clock::now();
        outcomes[i] = runPoint(points[i]);
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        report(outcomes[i], dt.count());
    });
    return outcomes;
}

std::vector<TaskOutcome>
SweepRunner::runTasks(std::vector<SweepTask> tasks)
{
    const std::size_t total = tasks.size();
    std::vector<TaskOutcome> outcomes(total);
    if (total == 0)
        return outcomes;

    std::mutex report_mutex;
    std::size_t done = 0;

    auto report = [&](const TaskOutcome &out, double secs) {
        std::lock_guard<std::mutex> lock(report_mutex);
        ++done;
        if (opt_.progress) {
            std::fprintf(stderr, "[%zu/%zu] %s %s(%.1fs)%s%s\n", done,
                         total, out.name.c_str(),
                         out.ok ? "" : "FAILED ", secs,
                         out.ok ? "" : ": ",
                         out.ok ? "" : out.error.c_str());
        }
    };

    dispatch(total, [&](std::size_t i) {
        auto t0 = std::chrono::steady_clock::now();
        TaskOutcome &out = outcomes[i];
        out.name = tasks[i].name;
        try {
            ScopedRecoverableFailures guard;
            tasks[i].fn();
            out.ok = true;
        } catch (const std::exception &e) {
            out.error = e.what();
        } catch (...) {
            out.error = "unknown exception";
        }
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        report(out, dt.count());
    });
    return outcomes;
}

SweepOptions
sweepOptionsFromArgs(const CliArgs &args)
{
    SweepOptions opt;
    opt.jobs = static_cast<unsigned>(args.getInt("jobs", 0));
    opt.progress = !args.getBool("csv");
    return opt;
}

} // namespace fp::sim
