/**
 * @file
 * Parsing and validation of experiment spec files (the JSON documents
 * committed under experiments/). The schema, all keys optional unless
 * noted:
 *
 *   {
 *     "name": "fig10",                 // required, [A-Za-z0-9_-]+
 *     "scenario": "fig10",             // registered scenario (default:
 *                                      // name; "sweep" = generic)
 *     "description": "one line",
 *     "mixes": ["Mix3"],               // default mix list (--mixes wins)
 *     "base": { "requests": 1200 },    // SimConfig overrides, in order
 *     "grid": { "queue": [1, 8, 64] }, // cross-product axes (in order,
 *                                      // rightmost fastest)
 *     "points": [                      // explicit named points
 *       { "name": "merge_q16",         //   required
 *         "mix": "Mix3",               //   optional mix pin
 *         "set": { "variant": "merge", "queue": 16 } }
 *     ],
 *     "params": { "trials": 200 },     // scenario-specific, free-form
 *     "output": { "out": "B.json" },   // default --out path
 *     "gate": { "metrics": ["execution_ticks"] },  // baseline-gate note
 *     "smoke": { "args": ["--trials=20"],          // CI smoke lane
 *                "trace": false }      // no Chrome trace to validate
 *   }
 *
 * Validation is strict and front-loaded (the satellite requirement):
 * unknown keys at any level, type mismatches, out-of-range values and
 * conflicting overrides (in `base`, every `points[].set`, and every
 * grid combination) are fatal at parse time with the spec file and
 * line in the message — never mid-sweep.
 */

#ifndef FP_SIM_SPEC_PARSE_HH
#define FP_SIM_SPEC_PARSE_HH

#include <string>

#include "sim/scenario.hh"

namespace fp::sim
{

/**
 * Parse and fully validate a spec document. @p path is used in error
 * messages and recorded as the spec source.
 */
ExperimentSpec parseSpecText(const std::string &text,
                             const std::string &path = "<inline>");

/** Read @p path and parse it; unreadable files are fatal. */
ExperimentSpec parseSpecFile(const std::string &path);

} // namespace fp::sim

#endif // FP_SIM_SPEC_PARSE_HH
