#include "sim/sim_config.hh"

#include <algorithm>
#include <exception>
#include <string>

#include "util/cli.hh"
#include "util/logging.hh"

namespace fp::sim
{

dram::DramParams
SimConfig::defaultDram()
{
    return dram::DramParams::ddr3_1600(2);
}

SimConfig
SimConfig::paperDefault()
{
    SimConfig cfg;
    cfg.cores = 4;
    cfg.maxOutstanding = 16;
    cfg.cpuPeriodTicks = 500;

    cfg.controller = core::ControllerParams::traditional();
    cfg.controller.oram.leafLevel = 24; // 4 GB data / 64 B / 50% / Z=4
    cfg.controller.oram.z = 4;
    cfg.controller.oram.payloadBytes = 0; // timing runs carry no data
    cfg.controller.oram.stashCapacity = 200;

    cfg.dram = defaultDram();
    return cfg;
}

void
applyObsFlags(SimConfig &cfg, const CliArgs &args)
{
    cfg.obs.traceOut = args.getString("trace-out", cfg.obs.traceOut);
    cfg.obs.statsOut = args.getString("stats-out", cfg.obs.statsOut);
    cfg.obs.statsIntervalTicks = static_cast<Tick>(args.getInt(
        "stats-interval",
        static_cast<std::int64_t>(cfg.obs.statsIntervalTicks)));
    fp_assert(cfg.obs.statsIntervalTicks > 0,
              "--stats-interval must be positive");

    if (args.has("profile-requests"))
        cfg.obs.profileRequests = true;
    cfg.obs.profileOut =
        args.getString("profile-out", cfg.obs.profileOut);

    if (args.has("trace-level")) {
        std::string lvl = args.getString("trace-level", "access");
        if (lvl == "off" || lvl == "0")
            cfg.obs.traceLevel = obs::TraceLevel::off;
        else if (lvl == "access" || lvl == "1")
            cfg.obs.traceLevel = obs::TraceLevel::access;
        else if (lvl == "full" || lvl == "2")
            cfg.obs.traceLevel = obs::TraceLevel::full;
        else
            fp_fatal("unknown --trace-level '%s' (off|access|full)",
                     lvl.c_str());
    }
}

BackendKind
parseBackendKind(const std::string &name)
{
    if (name == "dram")
        return BackendKind::dram;
    if (name == "net")
        return BackendKind::net;
    fp_fatal("unknown backend '%s' (dram|net)", name.c_str());
}

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::dram:
        return "dram";
      case BackendKind::net:
        return "net";
    }
    fp_panic("unreachable backend kind");
}

std::vector<std::string>
backendKindNames()
{
    return {"dram", "net"};
}

void
applyBackendFlags(SimConfig &cfg, const CliArgs &args)
{
    if (args.has("backend")) {
        cfg.backendKind =
            parseBackendKind(args.getString("backend", "dram"));
    }
    cfg.net.oneWayLatencyUs =
        args.getDouble("net-latency-us", cfg.net.oneWayLatencyUs);
    cfg.net.linkGbps = args.getDouble("net-gbps", cfg.net.linkGbps);
    const std::int64_t window = args.getInt(
        "net-window", static_cast<std::int64_t>(cfg.net.window));
    if (window < 1)
        fp_fatal("--net-window must be at least 1 (got %lld)",
                 static_cast<long long>(window));
    cfg.net.window = static_cast<unsigned>(window);
    // User input: reject with a CLI error (exit 1), not an assert.
    cfg.net.validate();

    const std::int64_t shards = args.getInt(
        "shards", static_cast<std::int64_t>(cfg.shards));
    if (shards < 1)
        fp_fatal("--shards must be at least 1 (got %lld)",
                 static_cast<long long>(shards));
    cfg.shards = static_cast<unsigned>(shards);

    const std::int64_t shard_window = args.getInt(
        "shard-window", static_cast<std::int64_t>(cfg.shardWindow));
    if (shard_window < 1)
        fp_fatal("--shard-window must be at least 1 (got %lld)",
                 static_cast<long long>(shard_window));
    cfg.shardWindow = static_cast<unsigned>(shard_window);

    applyFaultFlags(cfg, args);
}

namespace
{

double
rateFlag(const CliArgs &args, const char *name, double dflt)
{
    const double v = args.getDouble(name, dflt);
    if (v < 0.0 || v > 1.0)
        fp_fatal("--%s must be a probability in [0,1] (got %g)", name,
                 v);
    return v;
}

} // namespace

void
applyFaultFlags(SimConfig &cfg, const CliArgs &args)
{
    cfg.faults.lossRate =
        rateFlag(args, "fault-loss-rate", cfg.faults.lossRate);
    cfg.faults.errorRate =
        rateFlag(args, "fault-error-rate", cfg.faults.errorRate);

    if (args.has("fault-spike-us")) {
        cfg.faults.spikeUs =
            args.getDouble("fault-spike-us", cfg.faults.spikeUs);
        if (cfg.faults.spikeUs < 0.0)
            fp_fatal("--fault-spike-us must be non-negative (got %g)",
                     cfg.faults.spikeUs);
        // Asking for a spike magnitude without a rate means "spike
        // some requests": default the rate on rather than silently
        // doing nothing.
        if (cfg.faults.spikeRate == 0.0 &&
            !args.has("fault-spike-rate")) {
            cfg.faults.spikeRate = 0.01;
        }
    }
    cfg.faults.spikeRate =
        rateFlag(args, "fault-spike-rate", cfg.faults.spikeRate);

    if (args.has("fault-outage")) {
        const std::string window =
            args.getString("fault-outage", "");
        const auto colon = window.find(':');
        std::size_t t0_end = 0, t1_end = 0;
        double t0 = -1.0, t1 = -1.0;
        if (colon != std::string::npos) {
            try {
                t0 = std::stod(window.substr(0, colon), &t0_end);
                t1 = std::stod(window.substr(colon + 1), &t1_end);
            } catch (const std::exception &) {
                t0_end = 0; // fall through to the error below
            }
        }
        if (colon == std::string::npos || t0_end != colon ||
            t1_end != window.size() - colon - 1 || t0 < 0.0 ||
            t1 <= t0) {
            fp_fatal("--fault-outage expects T0:T1 in microseconds "
                     "with 0 <= T0 < T1 (got '%s')",
                     window.c_str());
        }
        cfg.faults.outageStartUs = t0;
        cfg.faults.outageEndUs = t1;
    }

    cfg.faults.seed = static_cast<std::uint64_t>(args.getInt(
        "fault-seed", static_cast<std::int64_t>(cfg.faults.seed)));

    cfg.retry.timeoutUs =
        args.getDouble("retry-timeout-us", cfg.retry.timeoutUs);
    if (cfg.retry.timeoutUs < 0.0)
        fp_fatal("--retry-timeout-us must be non-negative (got %g)",
                 cfg.retry.timeoutUs);

    const std::int64_t max_retries = args.getInt(
        "retry-max", static_cast<std::int64_t>(cfg.retry.maxRetries));
    if (max_retries < 0)
        fp_fatal("--retry-max must be non-negative (got %lld)",
                 static_cast<long long>(max_retries));
    cfg.retry.maxRetries = static_cast<unsigned>(max_retries);

    if (args.has("retry-backoff")) {
        const std::string spec = args.getString("retry-backoff", "");
        const auto colon = spec.find(':');
        try {
            if (colon == std::string::npos) {
                cfg.retry.backoffBaseUs = std::stod(spec);
                cfg.retry.backoffCapUs = std::max(
                    cfg.retry.backoffCapUs, cfg.retry.backoffBaseUs);
            } else {
                cfg.retry.backoffBaseUs =
                    std::stod(spec.substr(0, colon));
                cfg.retry.backoffCapUs =
                    std::stod(spec.substr(colon + 1));
            }
        } catch (const std::exception &) {
            fp_fatal("--retry-backoff expects BASE or BASE:CAP in "
                     "microseconds (got '%s')",
                     spec.c_str());
        }
        if (cfg.retry.backoffBaseUs < 0.0 ||
            cfg.retry.backoffCapUs < cfg.retry.backoffBaseUs) {
            fp_fatal("--retry-backoff needs 0 <= BASE <= CAP "
                     "(got %g:%g)",
                     cfg.retry.backoffBaseUs, cfg.retry.backoffCapUs);
        }
    }
}

void
applyPolicyFlags(SimConfig &cfg, const CliArgs &args)
{
    if (args.has("policy")) {
        cfg = withPolicyName(std::move(cfg),
                             args.getString("policy", ""));
    }
    const std::int64_t batch = args.getInt(
        "batch-size",
        static_cast<std::int64_t>(cfg.controller.batchSize));
    if (batch < 1)
        fp_fatal("--batch-size must be at least 1 (got %lld)",
                 static_cast<long long>(batch));
    cfg.controller.batchSize = static_cast<unsigned>(batch);
}

SimConfig
withPolicy(SimConfig cfg, core::PolicyKind kind)
{
    core::applyPolicyPreset(cfg.controller, kind);
    cfg.insecure = false;
    return cfg;
}

SimConfig
withPolicyName(SimConfig cfg, const std::string &name)
{
    return withPolicy(std::move(cfg), core::parsePolicyKind(name));
}

SimConfig
withTraditional(SimConfig cfg)
{
    auto oram = cfg.controller.oram;
    cfg.controller = core::ControllerParams::traditional();
    cfg.controller.oram = oram;
    cfg.insecure = false;
    return cfg;
}

SimConfig
withMergeOnly(SimConfig cfg, unsigned queue_size)
{
    auto oram = cfg.controller.oram;
    cfg.controller = core::ControllerParams::forkPath();
    cfg.controller.oram = oram;
    cfg.controller.labelQueueSize = queue_size;
    cfg.controller.cachePolicy = core::CachePolicy::none;
    cfg.insecure = false;
    return cfg;
}

SimConfig
withMergeMac(SimConfig cfg, std::uint64_t cache_bytes,
             unsigned queue_size)
{
    cfg = withMergeOnly(std::move(cfg), queue_size);
    cfg.controller.cachePolicy = core::CachePolicy::mac;
    cfg.controller.cacheBudgetBytes = cache_bytes;
    return cfg;
}

SimConfig
withMergeTreetop(SimConfig cfg, std::uint64_t cache_bytes,
                 unsigned queue_size)
{
    cfg = withMergeOnly(std::move(cfg), queue_size);
    cfg.controller.cachePolicy = core::CachePolicy::treetop;
    cfg.controller.cacheBudgetBytes = cache_bytes;
    return cfg;
}

SimConfig
withInsecure(SimConfig cfg)
{
    cfg.insecure = true;
    return cfg;
}

} // namespace fp::sim
