#include "sim/sim_config.hh"

#include "util/cli.hh"
#include "util/logging.hh"

namespace fp::sim
{

dram::DramParams
SimConfig::defaultDram()
{
    return dram::DramParams::ddr3_1600(2);
}

SimConfig
SimConfig::paperDefault()
{
    SimConfig cfg;
    cfg.cores = 4;
    cfg.maxOutstanding = 16;
    cfg.cpuPeriodTicks = 500;

    cfg.controller = core::ControllerParams::traditional();
    cfg.controller.oram.leafLevel = 24; // 4 GB data / 64 B / 50% / Z=4
    cfg.controller.oram.z = 4;
    cfg.controller.oram.payloadBytes = 0; // timing runs carry no data
    cfg.controller.oram.stashCapacity = 200;

    cfg.dram = defaultDram();
    return cfg;
}

void
applyObsFlags(SimConfig &cfg, const CliArgs &args)
{
    cfg.obs.traceOut = args.getString("trace-out", cfg.obs.traceOut);
    cfg.obs.statsOut = args.getString("stats-out", cfg.obs.statsOut);
    cfg.obs.statsIntervalTicks = static_cast<Tick>(args.getInt(
        "stats-interval",
        static_cast<std::int64_t>(cfg.obs.statsIntervalTicks)));
    fp_assert(cfg.obs.statsIntervalTicks > 0,
              "--stats-interval must be positive");

    if (args.has("trace-level")) {
        std::string lvl = args.getString("trace-level", "access");
        if (lvl == "off" || lvl == "0")
            cfg.obs.traceLevel = obs::TraceLevel::off;
        else if (lvl == "access" || lvl == "1")
            cfg.obs.traceLevel = obs::TraceLevel::access;
        else if (lvl == "full" || lvl == "2")
            cfg.obs.traceLevel = obs::TraceLevel::full;
        else
            fp_fatal("unknown --trace-level '%s' (off|access|full)",
                     lvl.c_str());
    }
}

void
applyBackendFlags(SimConfig &cfg, const CliArgs &args)
{
    if (args.has("backend")) {
        std::string kind = args.getString("backend", "dram");
        if (kind == "dram")
            cfg.backendKind = BackendKind::dram;
        else if (kind == "net")
            cfg.backendKind = BackendKind::net;
        else
            fp_fatal("unknown --backend '%s' (dram|net)",
                     kind.c_str());
    }
    cfg.net.oneWayLatencyUs =
        args.getDouble("net-latency-us", cfg.net.oneWayLatencyUs);
    cfg.net.linkGbps = args.getDouble("net-gbps", cfg.net.linkGbps);
    cfg.net.window = static_cast<unsigned>(args.getInt(
        "net-window", static_cast<std::int64_t>(cfg.net.window)));
    fp_assert(cfg.net.oneWayLatencyUs >= 0.0,
              "--net-latency-us must be non-negative");
    fp_assert(cfg.net.linkGbps > 0.0, "--net-gbps must be positive");
    fp_assert(cfg.net.window >= 1, "--net-window must be at least 1");
}

SimConfig
withTraditional(SimConfig cfg)
{
    auto oram = cfg.controller.oram;
    cfg.controller = core::ControllerParams::traditional();
    cfg.controller.oram = oram;
    cfg.insecure = false;
    return cfg;
}

SimConfig
withMergeOnly(SimConfig cfg, unsigned queue_size)
{
    auto oram = cfg.controller.oram;
    cfg.controller = core::ControllerParams::forkPath();
    cfg.controller.oram = oram;
    cfg.controller.labelQueueSize = queue_size;
    cfg.controller.cachePolicy = core::CachePolicy::none;
    cfg.insecure = false;
    return cfg;
}

SimConfig
withMergeMac(SimConfig cfg, std::uint64_t cache_bytes,
             unsigned queue_size)
{
    cfg = withMergeOnly(std::move(cfg), queue_size);
    cfg.controller.cachePolicy = core::CachePolicy::mac;
    cfg.controller.cacheBudgetBytes = cache_bytes;
    return cfg;
}

SimConfig
withMergeTreetop(SimConfig cfg, std::uint64_t cache_bytes,
                 unsigned queue_size)
{
    cfg = withMergeOnly(std::move(cfg), queue_size);
    cfg.controller.cachePolicy = core::CachePolicy::treetop;
    cfg.controller.cacheBudgetBytes = cache_bytes;
    return cfg;
}

SimConfig
withInsecure(SimConfig cfg)
{
    cfg.insecure = true;
    return cfg;
}

} // namespace fp::sim
