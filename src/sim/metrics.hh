/**
 * @file
 * Result records and the energy model for full-system runs.
 *
 * DRAM energy comes from the command counters of the DRAM model.
 * Controller energy uses per-access constants standing in for the
 * paper's Synopsys/CACTI numbers (the paper's Figure 15 shows the
 * total is dominated by external memory, so only the controller
 * terms' order of magnitude matters; the constants are documented
 * inline and swappable).
 */

#ifndef FP_SIM_METRICS_HH
#define FP_SIM_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/oram_controller.hh"
#include "dram/dram_system.hh"
#include "obs/request_profiler.hh"

namespace fp::sim
{

struct ControllerEnergyParams
{
    /** Stash CAM search per ORAM access. */
    double stashSearchNj = 0.05;
    /** One block moved between stash and the memory path. */
    double blockMoveNj = 0.01;
    /** Position map lookup + update per real access. */
    double posmapLookupNj = 0.02;
    /** MAC/treetop bucket access (read or insert). */
    double cacheAccessNj = 0.08;
    /** SRAM leakage per megabyte of on-chip storage. */
    double leakageMwPerMb = 30.0;
};

/** Everything a figure needs from one run. */
struct RunResult
{
    /** The run stopped at the tick limit before every core finished;
     *  all fields below describe the truncated prefix of the run. */
    bool hitTickLimit = false;

    // Provenance. Stamped by the experiment-spec runtime
    // (sim::ScenarioContext) when the run came from a spec file;
    // empty otherwise. Serialised to JSON only when stamped, so
    // results produced outside the spec layer (tests, examples,
    // direct System runs) stay byte-identical to the historical
    // format.
    std::string specName;  //!< ExperimentSpec::name of the spec run.
    std::uint64_t specHash = 0; //!< FNV-1a of the spec file bytes.

    // Timing.
    Tick executionTicks = 0;      //!< Slowest core's finish time.
    double avgLlcLatencyNs = 0.0; //!< The paper's "ORAM latency".
    double avgReadPathLen = 0.0;  //!< Tree levels fetched per access.
    double avgDramBucketsRead = 0.0;
    double avgDramServiceNs = 0.0;

    // Request accounting.
    std::uint64_t realAccesses = 0;
    std::uint64_t dummyAccesses = 0;
    std::uint64_t dummyReplacements = 0;
    std::uint64_t pendingSwaps = 0;
    std::uint64_t stashShortcuts = 0;
    std::uint64_t llcRequests = 0;

    // Path merging.
    std::uint64_t mergedLevelsSkipped = 0;
    /** Accesses that skipped level l, indexed by l. */
    std::vector<std::uint64_t> mergeSkipsPerLevel;

    // DRAM behaviour (zero when the backend has no row buffers).
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;

    // Memory-backend summary. Always populated; serialised to JSON
    // only for non-DRAM backends so DRAM-backed output stays
    // byte-identical to the pre-seam format.
    std::string backendKind = "dram";
    std::uint64_t backendReadBursts = 0;
    std::uint64_t backendWriteBursts = 0;
    std::uint64_t backendBytesRead = 0;
    std::uint64_t backendBytesWritten = 0;
    double backendAvgLatencyNs = 0.0;

    // Resilience (fault injection + retry). Serialised to JSON only
    // when a fault/retry stack was configured, so fault-free output
    // stays byte-identical to the historical format.
    bool faultsEnabled = false;
    bool retryEnabled = false;
    /** The run ended in a recoverable SimFailure (e.g. the retry
     *  budget was exhausted); counters describe the prefix. */
    bool failed = false;
    std::string failureMessage;
    std::uint64_t faultLossInjected = 0;
    std::uint64_t faultErrorInjected = 0;
    std::uint64_t faultSpikeInjected = 0;
    std::uint64_t faultOutageDropped = 0;
    std::uint64_t retryAttempts = 0;  //!< re-issues past the first try
    std::uint64_t retryTimeouts = 0;
    std::uint64_t retryDedupDropped = 0;
    std::uint64_t retryExhausted = 0;
    std::uint64_t retryMaxAttempts = 0;
    /**
     * FNV-1a fingerprint of the controller's issued request stream
     * (addr, isWrite, bytes in issue order), taken *above* the
     * resilience stack — always computed, serialised only for
     * fault/retry runs. Equal fingerprints between a faulty and a
     * fault-free run of the same config prove the access pattern the
     * controller emits is unchanged by injection + retry
     * (obliviousness under retry; see docs/ROBUSTNESS.md).
     */
    std::uint64_t reqStreamFingerprint = 0;

    // Energy (nJ).
    double dramEnergyNj = 0.0;
    double controllerEnergyNj = 0.0;

    // Stash health.
    std::size_t stashPeak = 0;
    std::uint64_t stashOverflows = 0;

    // Caching.
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;

    // Sharding (--shards > 1). Serialised to JSON only when the run
    // actually sharded, so single-controller output stays
    // byte-identical to the historical format.
    unsigned shards = 1;
    unsigned shardWindow = 0;
    std::uint64_t shardWindowRejects = 0;
    std::uint64_t shardBusyRejects = 0;
    /** Per-shard breakdowns, indexed by shard (empty when shards==1). */
    std::vector<std::uint64_t> shardDispatched;
    std::vector<std::uint64_t> shardRealAccesses;
    std::vector<std::uint64_t> shardDummyAccesses;
    std::vector<double> shardAvgLlcLatencyNs;

    // Per-request profiling (--profile-requests). Serialised to JSON
    // only when profiled, so profiling-off output stays
    // byte-identical to the historical format.
    bool profiled = false;
    std::uint64_t profiledRequests = 0;
    std::vector<obs::ProfileStageSummary> profileStages;
    obs::ProfileEffectiveness profileEffectiveness;

    double totalAccesses() const
    {
        return static_cast<double>(realAccesses + dummyAccesses);
    }

    double totalEnergyNj() const
    {
        return dramEnergyNj + controllerEnergyNj;
    }

    double rowHitRate() const
    {
        auto total = rowHits + rowMisses;
        return total ? static_cast<double>(rowHits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    double cacheHitRate() const
    {
        auto total = cacheHits + cacheMisses;
        return total ? static_cast<double>(cacheHits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Controller energy from its counters plus on-chip leakage. */
double controllerEnergyNj(const core::OramController &ctrl,
                          Tick sim_time,
                          const ControllerEnergyParams &params = {});

/** Geometric mean (figures 16-18 report geomeans over mixes). */
double geomean(const std::vector<double> &values);

/** Serialise a run result as a JSON object (external plotting). */
std::string toJson(const RunResult &result);

} // namespace fp::sim

#endif // FP_SIM_METRICS_HH
