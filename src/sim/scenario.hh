/**
 * @file
 * The declarative experiment layer: a sim::ExperimentSpec describes a
 * named experiment — base SimConfig overrides, a parameter grid
 * (cross-product axes plus explicit point lists), scenario parameters,
 * output files and baseline-gate metrics — parsed from a JSON spec
 * file committed under experiments/ (see spec_parse.hh). A Scenario
 * is the registered rendering/wiring code a spec selects by name; the
 * `fp_bench` driver (and the thin legacy bench wrappers) load a spec,
 * build a ScenarioContext from it plus the command line, and dispatch.
 *
 * Responsibilities are split so new experiments are data, not code:
 *
 *  - the spec owns every sweep grid, preset list and default (what the
 *    19 legacy bench binaries used to hard-code in flag-parsing);
 *  - the scenario owns the figure-specific derivation and table
 *    layout (normalisation against a baseline row, geomeans, analytic
 *    companion columns);
 *  - the generic "sweep" scenario (registered here) needs no code at
 *    all: it expands `grid` x `points` x mixes and emits the headline
 *    metrics, so a brand-new experiment is one committed JSON file.
 *
 * Every RunResult produced through a ScenarioContext is stamped with
 * the spec name and the FNV-1a hash of the spec file bytes, and the
 * stamp travels into the exported JSON (spec_name / spec_hash fields)
 * so plotted artifacts are traceable to the exact spec revision.
 */

#ifndef FP_SIM_SCENARIO_HH
#define FP_SIM_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/sweep.hh"
#include "util/json.hh"
#include "util/table.hh"

namespace fp::sim
{

/**
 * Where a spec came from: file path, raw text (kept for line-number
 * computation in post-parse error messages) and the FNV-1a hash of
 * the text, which doubles as the provenance stamp.
 */
struct SpecSource
{
    std::string path = "<inline>";
    std::string text;
    std::uint64_t hash = 0;
};

/** FNV-1a 64-bit hash of @p text (the spec provenance hash). */
std::uint64_t specHash(const std::string &text);

/**
 * Fatal spec error pointing at @p node's line in the spec file:
 * "experiment spec PATH:LINE: MSG". Exits with status 1 (throws
 * SimFailure under ScopedRecoverableFailures, like every fp_fatal).
 */
[[noreturn]] void specFail(const SpecSource &src, const JsonValue &node,
                           const std::string &msg);

/** One `"key": value` configuration override from a spec. */
struct SpecOverride
{
    std::string key;
    JsonValue value;
};

/**
 * One named experiment point: a config-override set, optionally
 * pinned to a workload mix. Scenarios iterate these for their
 * preset/variant lists; the generic sweep scenario runs them as-is.
 */
struct SpecPoint
{
    std::string name;
    std::string mix; //!< Empty: the scenario decides (usually ctx.mixes).
    std::vector<SpecOverride> overrides;
};

/** One cross-product axis of the generic sweep grid. */
struct GridAxis
{
    std::string key;
    std::vector<JsonValue> values;
};

/**
 * A parsed experiment spec. Everything the legacy bench binaries
 * hard-coded lives here; see spec_parse.hh for the JSON schema and
 * docs/ARCHITECTURE.md ("Authoring experiments") for the authoring
 * guide.
 */
struct ExperimentSpec
{
    std::string name;        //!< Experiment name (provenance stamp).
    std::string scenario;    //!< Registered scenario to dispatch to.
    std::string description; //!< One-line summary (--list output).

    /** Default mix list; empty means every Table 2 mix. The --mixes
     *  flag overrides it at run time. */
    std::vector<std::string> defaultMixes;

    /** Base SimConfig overrides, applied to paperDefault() in order
     *  before any command-line flag. */
    std::vector<SpecOverride> base;

    /** Cross-product axes (generic sweep scenario). */
    std::vector<GridAxis> grid;

    /** Explicit point list (generic sweep + scenario preset lists). */
    std::vector<SpecPoint> points;

    /** Scenario-specific parameters (free-form JSON object). */
    JsonValue params;

    /** Default --out path for scenarios that write a JSON document. */
    std::string defaultOut;

    /** Metrics the bench-baseline gate pins for this spec (documents
     *  tools/bench_baseline.py coverage; empty for ungated specs). */
    std::vector<std::string> gateMetrics;

    /** Extra flags the CI smoke lane appends when exercising this
     *  spec (tools/run_experiments.py). */
    std::vector<std::string> smokeArgs;
    /** Whether a smoke run emits a validatable Chrome trace (false
     *  for analytic scenarios that never build a System). */
    bool smokeTrace = true;

    SpecSource source;

    // --- typed params accessors -------------------------------------------
    // All fatal with the spec file/line on a missing required key or
    // a type mismatch, so scenarios never see half-valid parameters.

    bool hasParam(const std::string &key) const;
    std::uint64_t paramUint(const std::string &key) const;
    std::uint64_t paramUint(const std::string &key,
                            std::uint64_t def) const;
    double paramNum(const std::string &key, double def) const;
    std::string paramStr(const std::string &key,
                         const std::string &def) const;
    std::vector<std::uint64_t>
    paramUintList(const std::string &key) const;
    std::vector<double> paramNumList(const std::string &key) const;
    std::vector<std::string>
    paramStrList(const std::string &key) const;
    /** Required free-form param node. */
    const JsonValue &paramNode(const std::string &key) const;
};

/**
 * Apply one spec override to @p cfg. The key table mirrors the CLI
 * flags plus the sim::with* variant helpers; unknown keys, type
 * mismatches and out-of-range values are fatal with the spec
 * file/line. See docs/ARCHITECTURE.md for the full key reference.
 */
void applySpecOverride(SimConfig &cfg, const SpecOverride &ov,
                       const SpecSource &src);

/**
 * Apply a whole override set in order, then validate cross-key
 * conflicts (insecure + scheduler knobs, shards on the insecure
 * baseline, batch-size without the batched policy, cache-bytes
 * without a cache). @p where anchors conflict messages to the
 * override object's spec line.
 */
void applySpecOverrides(SimConfig &cfg,
                        const std::vector<SpecOverride> &ovs,
                        const SpecSource &src, const JsonValue &where);

/**
 * Expand the spec's explicit points and grid cross-product against
 * @p base, one SweepPoint per (config, mix) pair. Grid axes nest
 * rightmost-fastest; point names are "<mix>/<name>" when more than
 * one mix is in play, matching the legacy bench naming.
 */
std::vector<SweepPoint>
expandSpecPoints(const ExperimentSpec &spec, const SimConfig &base,
                 const std::vector<std::string> &mixes);

/**
 * Everything a scenario needs at run time: the spec, the command
 * line, the resolved base config and mix list, and sweep helpers
 * that reproduce the legacy fig_common semantics (policy forcing,
 * fatal failed points, csv-aware emission) plus provenance stamping.
 */
class ScenarioContext
{
  public:
    ScenarioContext(const ExperimentSpec &spec, const CliArgs &args);

    const ExperimentSpec &spec;
    const CliArgs &args;

    /** paperDefault + spec base overrides + command-line flags. */
    SimConfig base;
    /** --mixes, else the spec's default list, else every mix. */
    std::vector<std::string> mixes;
    bool csv = false;
    SweepOptions sweepOpt;

    /** --policy / --batch-size, forced onto every non-insecure point
     *  after its series transform (empty/0 = no override). */
    std::string policyOverride;
    unsigned batchSizeOverride = 0;

    unsigned leafLevel() const
    {
        return base.controller.oram.leafLevel;
    }
    std::uint64_t requests() const { return base.requestsPerCore; }

    /** Force the policy/batch-size overrides onto a point config;
     *  the identity when neither flag was given. */
    SimConfig applyPolicy(SimConfig cfg) const;

    /** base + a spec point's overrides (conflict-checked at parse). */
    SimConfig pointConfig(const SpecPoint &point) const;

    /**
     * Run every point through a SweepRunner configured by --jobs,
     * forcing the policy override (insecure points excepted), fatal
     * on any failed point, stamping provenance; results come back in
     * point order.
     */
    std::vector<RunResult> run(std::vector<SweepPoint> points) const;

    /** Like run() but failed points come back as error outcomes
     *  (bench_faults: degradation is the behaviour under test). */
    std::vector<SweepOutcome>
    runRaw(std::vector<SweepPoint> points) const;

    /** Run generic tasks on the same pool; fatal on failure. */
    void runTasks(std::vector<SweepTask> tasks) const;

    /** Stamp spec provenance onto a result (run()/runRaw() already
     *  do; exposed for scenarios that build results directly). */
    void stamp(RunResult &r) const;

    /** Print a table (CSV in --csv mode) followed by a blank line. */
    void emit(const TextTable &table) const;

    /** Figure header + the paper's takeaway (silent in --csv mode). */
    void banner(const std::string &figure,
                const std::string &paper_says) const;
};

using ScenarioFn = std::function<void(ScenarioContext &)>;

/** Register a scenario under @p name (last registration wins). */
void registerScenario(const std::string &name, ScenarioFn fn);

/** Every registered scenario name, sorted. */
std::vector<std::string> scenarioNames();

/** Is @p name a registered scenario? */
bool haveScenario(const std::string &name);

/**
 * Dispatch @p spec to its scenario with @p args; fatal when the
 * scenario is unknown. Returns the process exit status (0).
 */
int runSpec(const ExperimentSpec &spec, const CliArgs &args);

} // namespace fp::sim

#endif // FP_SIM_SCENARIO_HH
