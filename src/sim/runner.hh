/**
 * @file
 * Experiment-running helpers shared by the benchmark harnesses: run
 * a config against a named mix (or explicit profiles) and return the
 * RunResult. Keeps every bench binary to a thin table-printing layer.
 */

#ifndef FP_SIM_RUNNER_HH
#define FP_SIM_RUNNER_HH

#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/sim_config.hh"
#include "workload/synthetic.hh"

namespace fp::sim
{

/** Run one configuration with explicit per-core profiles. */
RunResult runProfiles(const SimConfig &cfg,
                      const std::vector<workload::WorkloadProfile>
                          &profiles);

/** Run one configuration against a Table 2 mix ("Mix1".."Mix10"). */
RunResult runMix(const SimConfig &cfg, const std::string &mix);

/** Run a PARSEC workload with cfg.cores threads (shared region). */
RunResult runParsec(SimConfig cfg, const std::string &name);

/**
 * Scale the per-core request budget so quick harness runs finish in
 * seconds; figure benches expose this through --requests.
 */
SimConfig withRequests(SimConfig cfg, std::uint64_t per_core);

} // namespace fp::sim

#endif // FP_SIM_RUNNER_HH
