#include "sim/metrics.hh"

#include <cmath>
#include <cstdio>

#include "util/json.hh"
#include "util/logging.hh"

namespace fp::sim
{

double
controllerEnergyNj(const core::OramController &ctrl, Tick sim_time,
                   const ControllerEnergyParams &params)
{
    const unsigned z = ctrl.params().oram.z;
    double accesses = static_cast<double>(ctrl.totalAccesses());
    double blocks_moved =
        static_cast<double>(ctrl.bucketsReadTotal() +
                            ctrl.bucketsWrittenTotal()) *
        static_cast<double>(z);

    double dynamic = accesses * params.stashSearchNj +
                     blocks_moved * params.blockMoveNj +
                     static_cast<double>(ctrl.realAccesses()) *
                         params.posmapLookupNj +
                     static_cast<double>(ctrl.onChipBucketReads()) *
                         params.cacheAccessNj;

    // Leakage over on-chip structures: stash + cache budget.
    double onchip_mb =
        static_cast<double>(ctrl.params().oram.stashCapacity *
                            (ctrl.params().blockPhysBytes + 16)) /
        (1024.0 * 1024.0);
    if (ctrl.params().cachePolicy != core::CachePolicy::none) {
        onchip_mb += static_cast<double>(
                         ctrl.params().cacheBudgetBytes) /
                     (1024.0 * 1024.0);
    }
    double seconds = static_cast<double>(sim_time) /
                     static_cast<double>(ticksPerSecond);
    double leakage_nj =
        params.leakageMwPerMb * onchip_mb * seconds * 1e6;

    return dynamic + leakage_nj;
}

std::string
toJson(const RunResult &r)
{
    JsonWriter w;
    w.beginObject();
    if (!r.specName.empty()) {
        // Provenance block, present only for spec-driven runs so
        // results produced outside the experiment-spec runtime stay
        // byte-identical to the historical format.
        char hash[24];
        std::snprintf(hash, sizeof(hash), "%016llx",
                      static_cast<unsigned long long>(r.specHash));
        w.field("spec_name", r.specName).field("spec_hash", hash);
    }
    w.field("hit_tick_limit", r.hitTickLimit)
        .field("execution_ticks", std::uint64_t{r.executionTicks})
        .field("avg_llc_latency_ns", r.avgLlcLatencyNs)
        .field("avg_read_path_len", r.avgReadPathLen)
        .field("avg_dram_buckets_read", r.avgDramBucketsRead)
        .field("avg_dram_service_ns", r.avgDramServiceNs)
        .field("real_accesses", r.realAccesses)
        .field("dummy_accesses", r.dummyAccesses)
        .field("total_accesses", r.totalAccesses())
        .field("dummy_replacements", r.dummyReplacements)
        .field("pending_swaps", r.pendingSwaps)
        .field("stash_shortcuts", r.stashShortcuts)
        .field("llc_requests", r.llcRequests)
        .field("merged_levels_skipped", r.mergedLevelsSkipped)
        .field("row_hits", r.rowHits)
        .field("row_misses", r.rowMisses)
        .field("row_hit_rate", r.rowHitRate())
        .field("dram_energy_nj", r.dramEnergyNj)
        .field("controller_energy_nj", r.controllerEnergyNj)
        .field("stash_peak", std::uint64_t{r.stashPeak})
        .field("stash_overflows", r.stashOverflows)
        .field("cache_hits", r.cacheHits)
        .field("cache_misses", r.cacheMisses)
        .field("cache_hit_rate", r.cacheHitRate());
    if (r.backendKind != "dram") {
        // Non-DRAM backends carry their own summary block. DRAM runs
        // omit it so their JSON stays byte-identical to the format
        // that predates the backend seam.
        w.field("backend_kind", r.backendKind)
            .field("backend_read_bursts", r.backendReadBursts)
            .field("backend_write_bursts", r.backendWriteBursts)
            .field("backend_bytes_read", r.backendBytesRead)
            .field("backend_bytes_written", r.backendBytesWritten)
            .field("backend_avg_latency_ns", r.backendAvgLatencyNs);
    }
    if (r.faultsEnabled || r.retryEnabled) {
        // Resilience block, present only when a fault/retry stack was
        // configured (fault-free output stays byte-identical).
        w.field("fault_injection_enabled", r.faultsEnabled)
            .field("retry_enabled", r.retryEnabled)
            .field("fault_loss_injected", r.faultLossInjected)
            .field("fault_error_injected", r.faultErrorInjected)
            .field("fault_spike_injected", r.faultSpikeInjected)
            .field("fault_outage_dropped", r.faultOutageDropped)
            .field("retry_attempts", r.retryAttempts)
            .field("retry_timeouts", r.retryTimeouts)
            .field("retry_dedup_dropped", r.retryDedupDropped)
            .field("retry_exhausted", r.retryExhausted)
            .field("retry_max_attempts", r.retryMaxAttempts)
            .field("fault_run_failed", r.failed)
            .field("fault_failure", r.failureMessage)
            // Hex string: a 64-bit fingerprint survives JSON parsers
            // that read numbers as doubles.
            .field("fault_stream_fingerprint",
                   strprintf("%016llx",
                             static_cast<unsigned long long>(
                                 r.reqStreamFingerprint)));
    }
    if (r.profiled) {
        // Per-request profile block, present only under
        // --profile-requests (profiling-off output stays
        // byte-identical; tests/test_obs.cc pins both directions).
        w.key("profile").beginObject();
        w.field("completed_requests", r.profiledRequests);
        w.key("stages").beginArray();
        for (const obs::ProfileStageSummary &s : r.profileStages) {
            w.beginObject()
                .field("stage", s.stage)
                .field("count", s.count)
                .field("mean_ns", s.meanNs)
                .field("max_ns", s.maxNs)
                .field("p50_ns", s.p50Ns)
                .field("p95_ns", s.p95Ns)
                .field("p99_ns", s.p99Ns)
                .field("p999_ns", s.p999Ns)
                .endObject();
        }
        w.endArray();
        const obs::ProfileEffectiveness &e = r.profileEffectiveness;
        w.key("effectiveness")
            .beginObject()
            .field("total_accesses", e.totalAccesses)
            .field("merged_accesses", e.mergedAccesses)
            .field("read_levels_skipped", e.readLevelsSkipped)
            .field("write_levels_elided", e.writeLevelsElided)
            .field("writebacks_replaced", e.writebacksReplaced)
            .field("pending_swaps", e.pendingSwaps)
            .field("onchip_bucket_reads", e.onChipBucketReads)
            .field("mac_data_hits", e.macDataHits)
            .field("cache_victim_writes", e.cacheVictimWrites)
            .field("stash_shortcuts", e.stashShortcuts)
            .field("naive_path_buckets", e.naivePathBuckets)
            .field("backend_buckets", e.backendBuckets)
            .field("bucket_bytes", e.bucketBytes)
            .field("buckets_saved", e.bucketsSaved())
            .field("bytes_saved", e.bytesSaved())
            .endObject();
        w.endObject();
    }
    if (r.shards > 1) {
        // Shard block, present only when the run actually sharded
        // (--shards=1 output stays byte-identical to the
        // single-controller format).
        w.key("shard").beginObject();
        w.field("shards", std::uint64_t{r.shards})
            .field("shard_window", std::uint64_t{r.shardWindow})
            .field("shard_window_rejects", r.shardWindowRejects)
            .field("shard_busy_rejects", r.shardBusyRejects);
        w.key("shard_dispatched").beginArray();
        for (std::uint64_t n : r.shardDispatched)
            w.value(n);
        w.endArray();
        w.key("shard_real_accesses").beginArray();
        for (std::uint64_t n : r.shardRealAccesses)
            w.value(n);
        w.endArray();
        w.key("shard_dummy_accesses").beginArray();
        for (std::uint64_t n : r.shardDummyAccesses)
            w.value(n);
        w.endArray();
        w.key("shard_avg_llc_latency_ns").beginArray();
        for (double v : r.shardAvgLlcLatencyNs)
            w.value(v);
        w.endArray();
        w.endObject();
    }
    w.key("merge_skips_per_level").beginArray();
    for (std::uint64_t n : r.mergeSkipsPerLevel)
        w.value(n);
    w.endArray().endObject();
    return w.str();
}

double
geomean(const std::vector<double> &values)
{
    fp_assert(!values.empty(), "geomean of nothing");
    double acc = 0.0;
    for (double v : values) {
        fp_assert(v > 0.0, "geomean needs positive values");
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace fp::sim
