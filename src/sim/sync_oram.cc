#include "sim/sync_oram.hh"

#include <cstdio>

#include "dram/dram_backend.hh"
#include "sim/sim_config.hh"
#include "util/logging.hh"

namespace fp::sim
{

SyncOram::SyncOram(core::ControllerParams controller)
    : SyncOram(std::move(controller), SimConfig::defaultDram())
{
}

SyncOram::SyncOram(core::ControllerParams controller,
                   dram::DramParams dram)
    : SyncOram(std::move(controller), &dram, nullptr)
{
}

SyncOram::SyncOram(core::ControllerParams controller,
                   mem::NetBackendParams net)
    : SyncOram(std::move(controller), nullptr, &net)
{
}

SyncOram::SyncOram(core::ControllerParams controller,
                   mem::NetBackendParams net, mem::FaultParams faults,
                   mem::RetryParams retry)
    : SyncOram(std::move(controller), nullptr, &net, &faults, &retry)
{
}

SyncOram::SyncOram(core::ControllerParams controller,
                   const dram::DramParams *dram,
                   const mem::NetBackendParams *net,
                   const mem::FaultParams *faults,
                   const mem::RetryParams *retry)
{
    fp_assert(controller.oram.payloadBytes > 0,
              "SyncOram needs a non-zero payload size");
    eq_ = std::make_unique<EventQueue>();
    if (dram) {
        dram_ = std::make_unique<dram::DramSystem>(*dram, *eq_);
        backend_ = std::make_unique<dram::DramBackend>(*dram_);
    } else {
        backend_ = std::make_unique<mem::NetBackend>(*net, *eq_);
    }

    mem::MemoryBackend *top = backend_.get();
    if (faults && faults->enabled()) {
        injector_ =
            std::make_unique<mem::FaultInjector>(*faults, *eq_, *top);
        top = injector_.get();
    }
    if (injector_ || (retry && retry->enabled())) {
        mem::RetryParams rp = retry ? *retry : mem::RetryParams{};
        if (!rp.enabled()) {
            // Same default the System uses: well past the net
            // model's round trip so slow successes are not
            // double-issued.
            rp.timeoutUs = net ? std::max(10.0 * 2.0 *
                                              net->oneWayLatencyUs,
                                          1000.0)
                               : 100.0;
        }
        resilient_ =
            std::make_unique<mem::ResilientBackend>(rp, *eq_, *top);
        top = resilient_.get();
    }

    ctrl_ = std::make_unique<core::OramController>(controller, *eq_,
                                                   *top);
}

SyncOram::~SyncOram() = default;

std::vector<std::uint8_t>
SyncOram::read(BlockAddr addr)
{
    std::vector<std::uint8_t> out;
    bool done = false;
    std::uint64_t id =
        ctrl_->request(oram::Op::read, addr, {},
                       [&](Tick, const auto &data) {
                           out = data;
                           done = true;
                       });
    fp_assert(id != 0, "SyncOram: request rejected");
    // runWhile (not run): in periodic mode the controller's access
    // stream never ends, so only advance until the answer arrives.
    eq_->runWhile([&done] { return !done; });
    fp_assert(done, "SyncOram: read did not complete");
    return out;
}

void
SyncOram::write(BlockAddr addr, std::vector<std::uint8_t> data)
{
    fp_assert(data.size() == ctrl_->params().oram.payloadBytes,
              "SyncOram: write of %zu bytes into %zu-byte blocks",
              data.size(), ctrl_->params().oram.payloadBytes);
    bool done = false;
    std::uint64_t id =
        ctrl_->request(oram::Op::write, addr, std::move(data),
                       [&](Tick, const auto &) { done = true; });
    fp_assert(id != 0, "SyncOram: request rejected");
    eq_->runWhile([&done] { return !done; });
    fp_assert(done, "SyncOram: write did not complete");
}

std::size_t
SyncOram::bulkLoad(
    const std::vector<std::pair<BlockAddr,
                                std::vector<std::uint8_t>>> &blocks)
{
    auto &ctrl = *ctrl_;
    fp_assert(ctrl.totalAccesses() == 0 && ctrl.inFlight() == 0,
              "bulkLoad must run before the first access");

    const auto &geo = ctrl.geometry();
    // Keep planted blocks out of the on-chip cache band so the
    // pre-warmed MAC (and pinned treetop) stay coherent with memory.
    unsigned floor_level = 0;
    if (ctrl.mac())
        floor_level = ctrl.mac()->m2() + 1;
    if (ctrl.treetop())
        floor_level =
            std::max(floor_level, ctrl.treetop()->numCachedLevels());
    fp_assert(floor_level <= geo.leafLevel(),
              "bulkLoad: cache band covers the whole tree");

    std::size_t slow_path = 0;
    for (const auto &[addr, payload] : blocks) {
        fp_assert(payload.size() == ctrl.params().oram.payloadBytes,
                  "bulkLoad: bad payload size for addr %llu",
                  static_cast<unsigned long long>(addr));
        LeafLabel label = ctrl.positionMap().lookupOrAssign(addr);

        bool placed = false;
        for (unsigned level = geo.leafLevel() + 1;
             level-- > floor_level;) {
            BucketIndex idx = geo.bucketAt(label, level);
            mem::Bucket bucket = ctrl.store().readBucket(idx);
            if (bucket.full())
                continue;
            bucket.add(mem::Block(addr, label, payload));
            ctrl.store().writeBucket(idx, bucket);
            if (ctrl.merkle())
                ctrl.merkle()->updateBucket(idx, bucket);
            placed = true;
            break;
        }
        if (!placed) {
            // Path congested near the leaves: regular timed write.
            ++slow_path;
            write(addr, payload);
        }
    }
    return slow_path;
}

std::size_t
SyncOram::blockSize() const
{
    return ctrl_->params().oram.payloadBytes;
}

void
SyncOram::printStats() const
{
    const auto &c = *ctrl_;
    std::printf("---- SyncOram statistics ----\n");
    std::printf("simulated time:        %.3f us\n",
                fp::ticksToNs(eq_->now()) / 1e3);
    std::printf("real ORAM accesses:    %llu\n",
                static_cast<unsigned long long>(c.realAccesses()));
    std::printf("dummy ORAM accesses:   %llu\n",
                static_cast<unsigned long long>(c.dummyAccessesRun()));
    std::printf("stash shortcuts:       %llu\n",
                static_cast<unsigned long long>(c.stashShortcuts()));
    std::printf("dummy replacements:    %llu\n",
                static_cast<unsigned long long>(
                    c.dummyReplacements()));
    std::printf("avg fetched path len:  %.2f buckets (full: %u)\n",
                c.avgReadPathLength(), c.geometry().numLevels());
    std::printf("avg DRAM buckets/acc:  %.2f\n",
                c.avgDramBucketsRead());
    std::printf("avg request latency:   %.1f ns\n",
                c.oramLatency().mean());
    if (dram_) {
        std::printf(
            "dram row hits/misses:  %llu / %llu\n",
            static_cast<unsigned long long>(dram_->rowHits()),
            static_cast<unsigned long long>(dram_->rowMisses()));
    } else {
        const mem::BackendStats bs = backend_->statsSnapshot();
        std::printf("%s bursts (r/w):     %llu / %llu\n",
                    backend_->kind(),
                    static_cast<unsigned long long>(bs.readBursts),
                    static_cast<unsigned long long>(bs.writeBursts));
    }
}

} // namespace fp::sim
