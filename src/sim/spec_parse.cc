#include "sim/spec_parse.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/logging.hh"
#include "workload/mixes.hh"

namespace fp::sim
{

namespace
{

std::string
typeName(const JsonValue &v)
{
    switch (v.type()) {
      case JsonValue::Type::null:
        return "null";
      case JsonValue::Type::boolean:
        return "a boolean";
      case JsonValue::Type::number:
        return "a number";
      case JsonValue::Type::string:
        return "a string";
      case JsonValue::Type::array:
        return "an array";
      case JsonValue::Type::object:
        return "an object";
    }
    return "a value";
}

const JsonValue &
expectObject(const SpecSource &src, const JsonValue &v,
             const std::string &what)
{
    if (!v.isObject())
        specFail(src, v, what + " must be an object, not " +
                             typeName(v));
    return v;
}

std::string
expectString(const SpecSource &src, const JsonValue &v,
             const std::string &what)
{
    if (!v.isString())
        specFail(src, v, what + " must be a string, not " +
                             typeName(v));
    return v.asString();
}

bool
expectBool(const SpecSource &src, const JsonValue &v,
           const std::string &what)
{
    if (!v.isBool())
        specFail(src, v, what + " must be true or false, not " +
                             typeName(v));
    return v.asBool();
}

std::vector<std::string>
expectStringList(const SpecSource &src, const JsonValue &v,
                 const std::string &what)
{
    if (!v.isArray())
        specFail(src, v, what + " must be an array of strings, not " +
                             typeName(v));
    std::vector<std::string> out;
    out.reserve(v.size());
    for (const JsonValue &item : v.items())
        out.push_back(expectString(src, item, what + " entry"));
    return out;
}

std::vector<SpecOverride>
overridesOf(const SpecSource &src, const JsonValue &v,
            const std::string &what)
{
    expectObject(src, v, what);
    std::vector<SpecOverride> out;
    out.reserve(v.members().size());
    for (const auto &[key, value] : v.members())
        out.push_back(SpecOverride{key, value});
    return out;
}

void
rejectUnknownKeys(const SpecSource &src, const JsonValue &obj,
                  const std::vector<std::string> &known,
                  const std::string &where)
{
    for (const auto &[key, value] : obj.members()) {
        if (std::find(known.begin(), known.end(), key) != known.end())
            continue;
        std::string list;
        for (const std::string &k : known)
            list += list.empty() ? k : ", " + k;
        specFail(src, value,
                 where + ": unknown key \"" + key +
                     "\" (known keys: " + list + ")");
    }
}

void
validateName(const SpecSource &src, const JsonValue &node,
             const std::string &name, const std::string &what)
{
    if (name.empty())
        specFail(src, node, what + " must not be empty");
    for (char c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '_' && c != '-') {
            specFail(src, node,
                     what + " \"" + name +
                         "\" may only contain [A-Za-z0-9_-]");
        }
    }
}

void
validateMixes(const SpecSource &src, const JsonValue &node,
              const std::vector<std::string> &mixes)
{
    const auto known = workload::mixNames();
    for (const std::string &mix : mixes) {
        if (std::find(known.begin(), known.end(), mix) == known.end())
            specFail(src, node,
                     "unknown mix \"" + mix +
                         "\" (Table 2 names Mix1..Mix10)");
    }
}

/**
 * Front-loaded validation: apply every override set the spec can ever
 * produce — base, each point, each grid combination, and their
 * compositions — to scratch configs, so range errors and conflicts
 * are fatal here (with spec file/line) and never mid-sweep.
 */
void
validateOverrides(const ExperimentSpec &spec)
{
    SimConfig base = SimConfig::paperDefault();
    applySpecOverrides(base, spec.base, spec.source, spec.params);

    std::vector<std::vector<SpecOverride>> combos{{}};
    for (const GridAxis &axis : spec.grid) {
        std::vector<std::vector<SpecOverride>> next;
        next.reserve(combos.size() * axis.values.size());
        for (const auto &combo : combos) {
            for (const JsonValue &v : axis.values) {
                auto extended = combo;
                extended.push_back(SpecOverride{axis.key, v});
                next.push_back(std::move(extended));
            }
        }
        combos = std::move(next);
    }

    std::vector<SpecPoint> points = spec.points;
    if (points.empty())
        points.push_back(SpecPoint{"base", "", {}});
    for (const SpecPoint &point : points) {
        for (const auto &combo : combos) {
            SimConfig cfg = base;
            applySpecOverrides(cfg, point.overrides, spec.source,
                               spec.params);
            applySpecOverrides(cfg, combo, spec.source, spec.params);
        }
    }
}

} // namespace

ExperimentSpec
parseSpecText(const std::string &text, const std::string &path)
{
    ExperimentSpec spec;
    spec.source.path = path;
    spec.source.text = text;
    spec.source.hash = specHash(text);
    const SpecSource &src = spec.source;

    // JsonValue::parse panics on malformed input; convert that into
    // a spec-file error naming the file. The error is re-raised only
    // after the guard is gone, so fp_fatal exits (or propagates to an
    // outer guard) rather than escaping the catch block.
    JsonValue doc;
    std::string parse_error;
    {
        ScopedRecoverableFailures guard;
        try {
            doc = JsonValue::parse(text);
        } catch (const SimFailure &failure) {
            parse_error = failure.what();
        }
    }
    if (!parse_error.empty())
        fp_fatal("experiment spec %s: %s", path.c_str(),
                 parse_error.c_str());
    expectObject(src, doc, "the spec document");
    rejectUnknownKeys(src, doc,
                      {"name", "scenario", "description", "mixes",
                       "base", "grid", "points", "params", "output",
                       "gate", "smoke"},
                      "spec");

    const JsonValue *name = doc.find("name");
    if (!name)
        specFail(src, doc, "spec is missing the required \"name\"");
    spec.name = expectString(src, *name, "\"name\"");
    validateName(src, *name, spec.name, "\"name\"");

    spec.scenario = spec.name;
    if (const JsonValue *v = doc.find("scenario")) {
        spec.scenario = expectString(src, *v, "\"scenario\"");
        validateName(src, *v, spec.scenario, "\"scenario\"");
    }
    if (const JsonValue *v = doc.find("description"))
        spec.description = expectString(src, *v, "\"description\"");

    if (const JsonValue *v = doc.find("mixes")) {
        spec.defaultMixes = expectStringList(src, *v, "\"mixes\"");
        if (spec.defaultMixes.empty())
            specFail(src, *v, "\"mixes\" must not be empty");
        validateMixes(src, *v, spec.defaultMixes);
    }

    if (const JsonValue *v = doc.find("base"))
        spec.base = overridesOf(src, *v, "\"base\"");

    if (const JsonValue *v = doc.find("grid")) {
        expectObject(src, *v, "\"grid\"");
        for (const auto &[key, values] : v->members()) {
            if (!values.isArray() || values.size() == 0)
                specFail(src, values,
                         "grid axis \"" + key +
                             "\" must be a non-empty array");
            GridAxis axis;
            axis.key = key;
            axis.values = values.items();
            spec.grid.push_back(std::move(axis));
        }
    }

    if (const JsonValue *v = doc.find("points")) {
        if (!v->isArray())
            specFail(src, *v, "\"points\" must be an array");
        for (const JsonValue &entry : v->items()) {
            expectObject(src, entry, "points entry");
            rejectUnknownKeys(src, entry, {"name", "mix", "set"},
                              "points entry");
            SpecPoint point;
            const JsonValue *pname = entry.find("name");
            if (!pname)
                specFail(src, entry,
                         "points entry is missing \"name\"");
            point.name = expectString(src, *pname, "point \"name\"");
            if (const JsonValue *mix = entry.find("mix")) {
                point.mix = expectString(src, *mix, "point \"mix\"");
                validateMixes(src, *mix, {point.mix});
            }
            if (const JsonValue *set = entry.find("set"))
                point.overrides =
                    overridesOf(src, *set, "point \"set\"");
            spec.points.push_back(std::move(point));
        }
    }

    if (const JsonValue *v = doc.find("params")) {
        expectObject(src, *v, "\"params\"");
        spec.params = *v;
    }

    if (const JsonValue *v = doc.find("output")) {
        expectObject(src, *v, "\"output\"");
        rejectUnknownKeys(src, *v, {"out"}, "output");
        if (const JsonValue *out = v->find("out"))
            spec.defaultOut =
                expectString(src, *out, "output \"out\"");
    }

    if (const JsonValue *v = doc.find("gate")) {
        expectObject(src, *v, "\"gate\"");
        rejectUnknownKeys(src, *v, {"metrics"}, "gate");
        if (const JsonValue *metrics = v->find("metrics")) {
            spec.gateMetrics =
                expectStringList(src, *metrics, "gate \"metrics\"");
            if (spec.gateMetrics.empty())
                specFail(src, *metrics,
                         "gate \"metrics\" must not be empty");
        }
    }

    if (const JsonValue *v = doc.find("smoke")) {
        expectObject(src, *v, "\"smoke\"");
        rejectUnknownKeys(src, *v, {"args", "trace"}, "smoke");
        if (const JsonValue *a = v->find("args"))
            spec.smokeArgs =
                expectStringList(src, *a, "smoke \"args\"");
        if (const JsonValue *t = v->find("trace"))
            spec.smokeTrace = expectBool(src, *t, "smoke \"trace\"");
    }

    validateOverrides(spec);
    return spec;
}

ExperimentSpec
parseSpecFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fp_fatal("cannot read experiment spec '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return parseSpecText(text.str(), path);
}

} // namespace fp::sim
