#include "sim/runner.hh"

#include "sim/system.hh"
#include "util/logging.hh"
#include "workload/mixes.hh"
#include "workload/parsec_profiles.hh"

namespace fp::sim
{

RunResult
runProfiles(const SimConfig &cfg,
            const std::vector<workload::WorkloadProfile> &profiles)
{
    System system(cfg, profiles);
    return system.run();
}

RunResult
runMix(const SimConfig &cfg, const std::string &mix)
{
    auto profiles = workload::mixProfiles(mix);
    fp_assert(profiles.size() == cfg.cores,
              "mix %s has %zu members but config has %u cores",
              mix.c_str(), profiles.size(), cfg.cores);
    return runProfiles(cfg, profiles);
}

RunResult
runParsec(SimConfig cfg, const std::string &name)
{
    cfg.sharedAddressSpace = true;
    auto profiles = workload::parsecThreads(name, cfg.cores);
    return runProfiles(cfg, profiles);
}

SimConfig
withRequests(SimConfig cfg, std::uint64_t per_core)
{
    cfg.requestsPerCore = per_core;
    return cfg;
}

} // namespace fp::sim
