/**
 * @file
 * Parallel sweep execution for the figure benches: a list of named
 * simulation points (config + workload + tick limit) fanned out over
 * a worker pool, with results collected in submission order.
 *
 * Determinism contract: each point runs in its own System (own
 * EventQueue, own StatRegistry, own seeded Rngs), so a point's
 * RunResult is a pure function of its SweepPoint regardless of which
 * worker runs it or in what order points complete. `jobs == 1`
 * executes the points inline on the calling thread, reproducing the
 * sequential benches byte for byte; any other job count produces the
 * same ordered results, just faster.
 *
 * Failure isolation: each worker installs ScopedRecoverableFailures,
 * so a point that panics (fp_assert) or throws produces a SweepOutcome
 * error record instead of killing the process and every other
 * in-flight point.
 */

#ifndef FP_SIM_SWEEP_HH
#define FP_SIM_SWEEP_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/sim_config.hh"
#include "util/cli.hh"
#include "workload/synthetic.hh"

namespace fp::sim
{

/** One named simulation to run: everything a worker thread needs. */
struct SweepPoint
{
    /** Display name (progress lines and error records). */
    std::string name;
    SimConfig cfg;
    /** One profile per core (size must equal cfg.cores). */
    std::vector<workload::WorkloadProfile> profiles;
    /** Tick budget; exceeding it truncates (RunResult.hitTickLimit). */
    Tick limit = maxTick;
};

/** Point from explicit per-core profiles. */
SweepPoint pointFromProfiles(
    std::string name, SimConfig cfg,
    std::vector<workload::WorkloadProfile> profiles);

/** Point from a Table 2 mix name ("Mix1".."Mix10"). */
SweepPoint pointFromMix(std::string name, SimConfig cfg,
                        const std::string &mix);

/** Point from a PARSEC workload (cfg.cores threads, shared region). */
SweepPoint pointFromParsec(std::string name, SimConfig cfg,
                           const std::string &workload);

/** What happened to one point. */
struct SweepOutcome
{
    std::string name;
    bool ok = false;
    RunResult result;  //!< Valid iff ok.
    std::string error; //!< Failure message iff !ok.
};

/**
 * An arbitrary unit of work for SweepRunner::runTasks — for benches
 * whose points are not (config, profiles) System runs (table
 * builders, statistical trials, component timings). The callable
 * must be self-contained: it runs under the same failure isolation
 * and thread pool as SweepPoints, so it may not touch shared mutable
 * state unless it synchronizes that state itself.
 */
struct SweepTask
{
    /** Display name (progress lines and error records). */
    std::string name;
    std::function<void()> fn;
};

/** What happened to one task. */
struct TaskOutcome
{
    std::string name;
    bool ok = false;
    std::string error; //!< Failure message iff !ok.
};

struct SweepOptions
{
    /** Worker threads; 0 means hardware concurrency. 1 runs the
     *  points inline on the calling thread. */
    unsigned jobs = 0;
    /** Print a "[done/total] name" line to stderr per finished
     *  point. */
    bool progress = false;
    /** Optional per-point completion hook, invoked serialized (under
     *  a lock) with the outcome and completion counts. Must not
     *  assume any particular completion order across points. */
    std::function<void(const SweepOutcome &outcome, std::size_t done,
                       std::size_t total)>
        onPointDone;
};

class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opt = {});

    /**
     * Run every point; returns one outcome per point, in the order
     * the points were given (independent of completion order).
     */
    std::vector<SweepOutcome> run(std::vector<SweepPoint> points);

    /**
     * Run every task; returns one outcome per task, in the order the
     * tasks were given. Same scheduling, progress reporting and
     * failure isolation as run(); onPointDone is not invoked (tasks
     * produce no RunResult).
     */
    std::vector<TaskOutcome> runTasks(std::vector<SweepTask> tasks);

    /** Worker count actually used for a sweep of @p npoints. */
    unsigned effectiveJobs(std::size_t npoints) const;

    /** std::thread::hardware_concurrency, never 0. */
    static unsigned hardwareJobs();

  private:
    /** Fan run_one(i), i in [0, total), over the worker pool (inline
     *  and in order when effectiveJobs(total) == 1). */
    void dispatch(std::size_t total,
                  const std::function<void(std::size_t)> &run_one);

    SweepOptions opt_;
};

/**
 * Build SweepOptions from the common bench flags: `--jobs=N`
 * (default hardware concurrency) and progress-line printing on
 * unless `--csv` asked for machine-clean output.
 */
SweepOptions sweepOptionsFromArgs(const CliArgs &args);

} // namespace fp::sim

#endif // FP_SIM_SWEEP_HH
