/**
 * @file
 * Whole-experiment configuration bundling the processor, ORAM
 * controller, DRAM and workload-shape knobs. The defaults reproduce
 * the paper's Table 1 system.
 */

#ifndef FP_SIM_SIM_CONFIG_HH
#define FP_SIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/oram_controller.hh"
#include "dram/dram_params.hh"
#include "mem/fault_injector.hh"
#include "mem/net_backend.hh"
#include "mem/resilient_backend.hh"
#include "obs/tracer.hh"

namespace fp
{
class CliArgs;
} // namespace fp

namespace fp::sim
{

/**
 * Observability outputs. Both are off (empty paths) by default; when
 * off, no tracer/sampler object exists at all, so instrumented hot
 * paths only pay a null-pointer test.
 */
struct ObsConfig
{
    /** Chrome-trace JSON output path; empty disables tracing. */
    std::string traceOut;
    obs::TraceLevel traceLevel = obs::TraceLevel::access;
    /** Interval-stats JSON-lines path; empty disables sampling. */
    std::string statsOut;
    /** Snapshot period in ticks (100 us simulated by default). */
    Tick statsIntervalTicks = 100'000'000;
    /** Per-request lifecycle profiling (obs::RequestProfiler). */
    bool profileRequests = false;
    /** Full profile-report JSON path; implies profileRequests. */
    std::string profileOut;

    bool traceEnabled() const { return !traceOut.empty(); }
    bool statsEnabled() const { return !statsOut.empty(); }
    bool profilingEnabled() const
    {
        return profileRequests || !profileOut.empty();
    }
};

/** Which mem::MemoryBackend implementation serves the controller. */
enum class BackendKind
{
    dram, //!< The DDR3 timing model (the paper's configuration).
    net,  //!< mem::NetBackend: a remote/cloud store model.
};

/** Parse a backend name ("dram", "net"); unknown names are fatal
 *  with the list of valid ones. */
BackendKind parseBackendKind(const std::string &name);

/** The registry name of @p kind. */
const char *backendKindName(BackendKind kind);

/** Every registered backend name, in registry order. */
std::vector<std::string> backendKindNames();

struct SimConfig
{
    // --- processor (Table 1) ----------------------------------------------
    unsigned cores = 4;
    /**
     * Outstanding LLC misses per core (MSHR depth): 1 models an
     * in-order core, 16 the paper's 8-way out-of-order core (whose
     * miss queue must be deep enough to fill the 64-entry label
     * queue across 4 cores — see EXPERIMENTS.md calibration).
     */
    unsigned maxOutstanding = 16;
    Tick cpuPeriodTicks = 500; // 2 GHz

    /** LLC misses each core replays. */
    std::uint64_t requestsPerCore = 4000;

    // --- memory path -------------------------------------------------------
    core::ControllerParams controller;

    /**
     * The paper's DDR3-1600 x2-channel part: the single source of
     * truth for the default DRAM configuration (SyncOram and the
     * figure harnesses all start from it).
     */
    static dram::DramParams defaultDram();

    dram::DramParams dram = defaultDram();

    /** Backend implementation; `dram` is the paper's configuration. */
    BackendKind backendKind = BackendKind::dram;
    /** Remote-store model, used when backendKind == net. */
    mem::NetBackendParams net;

    /**
     * Fault model layered over the chosen backend; all-zero rates
     * (the default) mean no injector is built at all, so fault-free
     * runs carry zero extra machinery and stay byte-identical to
     * historical output.
     */
    mem::FaultParams faults;
    /**
     * Retry policy above the fault model. timeoutUs == 0 (default)
     * leaves the choice to the System: it picks a backend-appropriate
     * deadline when faults are enabled, and builds no resilient layer
     * otherwise. A non-zero value forces the layer on, faults or not.
     */
    mem::RetryParams retry;

    /**
     * Run without ORAM: each miss is one 64 B DRAM access. Used for
     * the insecure baseline of Figure 14.
     */
    bool insecure = false;

    // --- sharding -----------------------------------------------------------
    /**
     * Number of independent ORAM shards behind the dispatcher
     * (core::ShardedOram). 1 (the default) builds the classic single
     * controller, byte-identical to historical output; > 1 partitions
     * the block space across that many complete ORAM stacks, each
     * with its own memory backend instance.
     */
    unsigned shards = 1;
    /** Per-shard inflight window of the dispatcher (shards > 1). */
    unsigned shardWindow = 16;

    // --- workload shape -----------------------------------------------------
    /** Threads share one address region (PARSEC style). */
    bool sharedAddressSpace = false;

    std::uint64_t seed = 1;

    // --- observability ------------------------------------------------------
    ObsConfig obs;

    /**
     * Table 1 defaults: 4-core 2 GHz OoO, 4 GB data ORAM (L=24,
     * Z=4, 64 B blocks), DDR3-1600 x2 channels, subtree layout.
     * The controller starts as traditional Path ORAM; experiment
     * code flips the Fork Path features per series.
     */
    static SimConfig paperDefault();
};

/**
 * Apply the shared observability flags to @p cfg:
 *
 *   --trace-out=PATH     write a Chrome-trace JSON file
 *   --trace-level=LVL    "access" (default) or "full"; also 0/1/2
 *   --stats-out=PATH     write interval-stats JSON lines
 *   --stats-interval=T   sampling period in ticks (1 tick = 1 ps)
 *   --profile-requests   per-request lifecycle profiling into the
 *                        RunResult's "profile" block
 *   --profile-out=PATH   full profile report JSON (histogram buckets
 *                        included); implies --profile-requests
 *
 * Unrecognised level names are fatal; absent flags leave defaults.
 */
void applyObsFlags(SimConfig &cfg, const CliArgs &args);

/**
 * Apply the shared memory-backend flags to @p cfg:
 *
 *   --backend=KIND       "dram" (default) or "net"
 *   --net-latency-us=T   one-way propagation delay (default 50)
 *   --net-gbps=B         link bandwidth in Gb/s (default 10)
 *   --net-window=N       outstanding-request window (default 16)
 *   --shards=N           independent ORAM shards (default 1)
 *   --shard-window=K     dispatcher inflight window per shard (16)
 *
 * The --net-* flags tune the model whether or not --backend=net was
 * given on the same command line (so a sweep driver can set them
 * once). Unknown kinds and non-positive values are fatal.
 *
 * Also applies the fault-injection / retry flags (applyFaultFlags).
 */
void applyBackendFlags(SimConfig &cfg, const CliArgs &args);

/**
 * Apply the fault-injection and retry flags to @p cfg (called from
 * applyBackendFlags; exposed for harnesses that only want these):
 *
 *   --fault-loss-rate=P    probability a request is lost (default 0)
 *   --fault-error-rate=P   probability of a transient error (0)
 *   --fault-spike-rate=P   probability of a latency spike (0; set
 *                          implicitly to 0.01 by --fault-spike-us)
 *   --fault-spike-us=T     spike magnitude in us (default 500)
 *   --fault-outage=T0:T1   store unreachable for [T0,T1) us
 *   --fault-seed=S         fault-decision stream seed
 *   --retry-timeout-us=T   per-attempt completion deadline (0 = auto)
 *   --retry-max=N          retries after the first attempt (5)
 *   --retry-backoff=B[:C]  backoff base (and cap) in us
 *
 * Rates outside [0,1], negative times, and malformed outage windows
 * are fatal with a CLI-facing message.
 */
void applyFaultFlags(SimConfig &cfg, const CliArgs &args);

/**
 * Apply the scheduling-policy flags to @p cfg:
 *
 *   --policy=NAME        access policy from the core registry
 *                        ("traditional", "forkpath", "batched");
 *                        applies the policy's canonical preset via
 *                        core::applyPolicyPreset, keeping the ORAM
 *                        geometry and timing knobs
 *   --batch-size=N       admission batch of the batched policy (8)
 *
 * Unknown names and non-positive batch sizes are fatal. Absent flags
 * leave @p cfg's controller untouched, so default invocations stay
 * byte-identical to historical output.
 */
void applyPolicyFlags(SimConfig &cfg, const CliArgs &args);

/** Select a scheduling policy by kind (core registry preset). */
SimConfig withPolicy(SimConfig cfg, core::PolicyKind kind);

/** Select a scheduling policy by registry name (fatal if unknown). */
SimConfig withPolicyName(SimConfig cfg, const std::string &name);

/** Controller variants used across the figures. */
SimConfig withTraditional(SimConfig cfg);
SimConfig withMergeOnly(SimConfig cfg, unsigned queue_size = 64);
SimConfig withMergeMac(SimConfig cfg, std::uint64_t cache_bytes,
                       unsigned queue_size = 64);
SimConfig withMergeTreetop(SimConfig cfg, std::uint64_t cache_bytes,
                           unsigned queue_size = 64);
SimConfig withInsecure(SimConfig cfg);

} // namespace fp::sim

#endif // FP_SIM_SIM_CONFIG_HH
