/**
 * @file
 * Whole-experiment configuration bundling the processor, ORAM
 * controller, DRAM and workload-shape knobs. The defaults reproduce
 * the paper's Table 1 system.
 */

#ifndef FP_SIM_SIM_CONFIG_HH
#define FP_SIM_SIM_CONFIG_HH

#include <cstdint>

#include "core/oram_controller.hh"
#include "dram/dram_params.hh"

namespace fp::sim
{

struct SimConfig
{
    // --- processor (Table 1) ----------------------------------------------
    unsigned cores = 4;
    /**
     * Outstanding LLC misses per core (MSHR depth): 1 models an
     * in-order core, 16 the paper's 8-way out-of-order core (whose
     * miss queue must be deep enough to fill the 64-entry label
     * queue across 4 cores — see EXPERIMENTS.md calibration).
     */
    unsigned maxOutstanding = 16;
    Tick cpuPeriodTicks = 500; // 2 GHz

    /** LLC misses each core replays. */
    std::uint64_t requestsPerCore = 4000;

    // --- memory path -------------------------------------------------------
    core::ControllerParams controller;
    dram::DramParams dram = dram::DramParams::ddr3_1600(2);

    /**
     * Run without ORAM: each miss is one 64 B DRAM access. Used for
     * the insecure baseline of Figure 14.
     */
    bool insecure = false;

    // --- workload shape -----------------------------------------------------
    /** Threads share one address region (PARSEC style). */
    bool sharedAddressSpace = false;

    std::uint64_t seed = 1;

    /**
     * Table 1 defaults: 4-core 2 GHz OoO, 4 GB data ORAM (L=24,
     * Z=4, 64 B blocks), DDR3-1600 x2 channels, subtree layout.
     * The controller starts as traditional Path ORAM; experiment
     * code flips the Fork Path features per series.
     */
    static SimConfig paperDefault();
};

/** Controller variants used across the figures. */
SimConfig withTraditional(SimConfig cfg);
SimConfig withMergeOnly(SimConfig cfg, unsigned queue_size = 64);
SimConfig withMergeMac(SimConfig cfg, std::uint64_t cache_bytes,
                       unsigned queue_size = 64);
SimConfig withMergeTreetop(SimConfig cfg, std::uint64_t cache_bytes,
                           unsigned queue_size = 64);
SimConfig withInsecure(SimConfig cfg);

} // namespace fp::sim

#endif // FP_SIM_SIM_CONFIG_HH
