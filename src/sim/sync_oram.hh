/**
 * @file
 * SyncOram: the batteries-included synchronous front door to the
 * library. It owns an event queue, a DDR3 model and a Fork Path ORAM
 * controller, and exposes a plain blocking read/write interface in
 * block units — what an application embedding the ORAM (rather than
 * running experiments) wants.
 *
 * Every call advances the internal simulation until the request
 * retires, so timing statistics (simulated nanoseconds, DRAM traffic,
 * dummy overhead) remain meaningful and can be printed afterwards.
 */

#ifndef FP_SIM_SYNC_ORAM_HH
#define FP_SIM_SYNC_ORAM_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/oram_controller.hh"
#include "dram/dram_system.hh"
#include "mem/backend.hh"
#include "mem/fault_injector.hh"
#include "mem/net_backend.hh"
#include "mem/resilient_backend.hh"
#include "util/event_queue.hh"

namespace fp::sim
{

class SyncOram
{
  public:
    /**
     * Store backed by the default DRAM part
     * (SimConfig::defaultDram(), the paper's DDR3-1600 x2).
     *
     * @param controller Configuration for the ORAM controller; the
     *        payload size must be non-zero to carry data.
     */
    explicit SyncOram(core::ControllerParams controller);

    /** Store backed by a specific DRAM configuration. */
    SyncOram(core::ControllerParams controller,
             dram::DramParams dram);

    /** Store backed by the network/cloud model (mem::NetBackend). */
    SyncOram(core::ControllerParams controller,
             mem::NetBackendParams net);

    /**
     * Store backed by the network/cloud model wrapped in the
     * fault-injection + retry stack (mem::FaultInjector under
     * mem::ResilientBackend) — the embedding analogue of the
     * System's --fault-* / --retry-* flags. A retry.timeoutUs of 0
     * picks a deadline suited to the net model's round trip.
     */
    SyncOram(core::ControllerParams controller,
             mem::NetBackendParams net, mem::FaultParams faults,
             mem::RetryParams retry);
    ~SyncOram();

    /** Blocking read of one block. Unwritten blocks read as zeros. */
    std::vector<std::uint8_t> read(BlockAddr addr);

    /** Blocking write of one block (sized to payloadBytes). */
    void write(BlockAddr addr, std::vector<std::uint8_t> data);

    /**
     * Initialise the ORAM with a data set in one pass, without
     * paying a full path access per block: each block gets a uniform
     * leaf label and is planted directly in the deepest free bucket
     * of its path (below any on-chip cache band, so cache state stays
     * coherent). Blocks that find no deep slot fall back to a normal
     * write. Must be called before the first access.
     *
     * @return the number of blocks that needed the slow path.
     */
    std::size_t bulkLoad(
        const std::vector<
            std::pair<BlockAddr, std::vector<std::uint8_t>>> &blocks);

    /** Payload size each block carries. */
    std::size_t blockSize() const;

    /** Simulated time elapsed so far. */
    Tick now() const { return eq_->now(); }

    core::OramController &controller() { return *ctrl_; }
    /** The base store (below any fault/retry decorators). */
    mem::MemoryBackend &backend() { return *backend_; }
    /** Null unless the fault-injecting constructor was used. */
    mem::FaultInjector *faultInjector() { return injector_.get(); }
    mem::ResilientBackend *resilientBackend()
    {
        return resilient_.get();
    }
    /** The DRAM timing model; null for non-DRAM backends. */
    dram::DramSystem *dram() { return dram_.get(); }

    /** Print a human-readable stats summary to stdout. */
    void printStats() const;

  private:
    /** Delegation target; exactly one of @p dram / @p net is set,
     *  @p faults / @p retry are optional decorator configs. */
    SyncOram(core::ControllerParams controller,
             const dram::DramParams *dram,
             const mem::NetBackendParams *net,
             const mem::FaultParams *faults = nullptr,
             const mem::RetryParams *retry = nullptr);

    std::unique_ptr<EventQueue> eq_;
    /** Set only for DRAM-backed stores (feeds the row-hit line). */
    std::unique_ptr<dram::DramSystem> dram_;
    std::unique_ptr<mem::MemoryBackend> backend_;
    /** Optional resilience stack (fault-injecting constructor). */
    std::unique_ptr<mem::FaultInjector> injector_;
    std::unique_ptr<mem::ResilientBackend> resilient_;
    std::unique_ptr<core::OramController> ctrl_;
};

} // namespace fp::sim

#endif // FP_SIM_SYNC_ORAM_HH
