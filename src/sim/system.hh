/**
 * @file
 * The full-system harness: cores -> (ORAM controller | insecure
 * memory) -> DRAM, all on one event queue. One System object is one
 * experiment run; it produces a RunResult for the figure harnesses.
 */

#ifndef FP_SIM_SYSTEM_HH
#define FP_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "core/oram_controller.hh"
#include "core/sharded_oram.hh"
#include "dram/dram_system.hh"
#include "mem/backend.hh"
#include "obs/interval_stats.hh"
#include "obs/request_profiler.hh"
#include "obs/tracer.hh"
#include "sim/metrics.hh"
#include "sim/sim_config.hh"
#include "util/event_queue.hh"
#include "util/stats.hh"
#include "workload/core_model.hh"

namespace fp::sim
{

class System
{
  public:
    /**
     * @param cfg      System configuration.
     * @param profiles One workload profile per core (size must equal
     *                 cfg.cores).
     */
    System(const SimConfig &cfg,
           std::vector<workload::WorkloadProfile> profiles);
    ~System();

    /**
     * Run until every core finishes its request budget, or until the
     * event queue passes @p limit ticks. A truncated run returns a
     * RunResult with hitTickLimit set (and executionTicks at the
     * truncation point) rather than aborting, so sweeps can record
     * the partial outcome and move on.
     */
    RunResult run(Tick limit = maxTick);

    /** Dump every component's registered statistics. */
    void printStats(std::ostream &os);

    EventQueue &eventQueue() { return eq_; }
    /** The base store (DRAM or net model), below any decorators. */
    mem::MemoryBackend &backend() { return *backend_; }
    /** The backend the controller actually talks to: the resilience
     *  stack's top when faults/retries are configured, else the base
     *  store. */
    mem::MemoryBackend &topBackend() { return *topBackend_; }
    /** Null unless cfg.faults.enabled(). */
    mem::FaultInjector *faultInjector() { return injector_.get(); }
    /** Null unless a retry layer was built (explicitly via
     *  cfg.retry.timeoutUs > 0, or implicitly with the faults). */
    mem::ResilientBackend *resilientBackend()
    {
        return resilient_.get();
    }
    /** The DRAM timing model; null when cfg.backendKind != dram
     *  (or when sharded — see shardDram). */
    dram::DramSystem *dram() { return dram_.get(); }
    /** Null in insecure mode (or when sharded — see sharded()). */
    core::OramController *controller() { return ctrl_.get(); }
    /** The shard dispatcher; null unless cfg.shards > 1. */
    core::ShardedOram *sharded() { return sharded_.get(); }
    /** Shard s's DRAM model; null off the DRAM backend or unsharded. */
    dram::DramSystem *shardDram(unsigned s)
    {
        return shardParts_[s].dram.get();
    }
    /** Shard s's base store (below any decorators); sharded only. */
    mem::MemoryBackend *shardBackend(unsigned s)
    {
        return shardParts_[s].backend.get();
    }
    /** Shard s's lifecycle profiler; null unless profiling a sharded
     *  run (the aggregate rollup lands in the RunResult). */
    obs::RequestProfiler *shardProfiler(unsigned s)
    {
        return shardParts_[s].profiler.get();
    }
    /** Shard s's fault injector; null unless cfg.faults.enabled()
     *  on a sharded run. */
    mem::FaultInjector *shardInjector(unsigned s)
    {
        return shardParts_[s].injector.get();
    }
    /** Shard s's retry layer; null unless the resilience stack was
     *  built (see resilientBackend()) on a sharded run. */
    mem::ResilientBackend *shardResilient(unsigned s)
    {
        return shardParts_[s].resilient.get();
    }
    /** Null unless cfg.obs.traceOut was set. */
    obs::Tracer *tracer() { return tracer_.get(); }
    /** Null unless cfg.obs.statsOut was set. */
    obs::IntervalStats *intervalStats() { return intervalStats_.get(); }
    /** Null unless per-request profiling is on (and not insecure:
     *  the profiler follows ORAM pipeline milestones). */
    obs::RequestProfiler *profiler() { return profiler_.get(); }
    /** This system's statistics registry (instance-scoped so several
     *  Systems can coexist, e.g. on sweep worker threads). */
    const StatRegistry &statRegistry() const { return registry_; }
    const std::vector<std::unique_ptr<workload::CoreModel>> &
    cores() const
    {
        return cores_;
    }

  private:
    class OramSink;
    class InsecureSink;
    class ShardedSink;

    /** One shard's private observability + memory stack (the
     *  controller itself lives inside sharded_). */
    struct ShardParts
    {
        /** View of the root tracer: same file, tracks at tid offset
         *  32 * shard with an "s<N>." name prefix. */
        std::unique_ptr<obs::Tracer> tracerView;
        std::unique_ptr<obs::RequestProfiler> profiler;
        std::unique_ptr<dram::DramSystem> dram;
        std::unique_ptr<mem::MemoryBackend> backend;
        std::unique_ptr<mem::FaultInjector> injector;
        std::unique_ptr<mem::ResilientBackend> resilient;
        /** Top of this shard's decorator stack. */
        mem::MemoryBackend *top = nullptr;
    };

    /** Single-controller memory path + sink (cfg.shards <= 1). */
    void buildSingle();
    /** Sharded memory path + dispatcher + sink (cfg.shards > 1). */
    void buildSharded();

    bool allDone() const;
    bool resilienceConfigured() const;

    SimConfig cfg_;
    /** Must precede every stat-owning component: StatGroups capture
     *  the thread's current registry at construction and deregister
     *  from it on destruction, so the registry must be built first
     *  and torn down last. */
    StatRegistry registry_;
    EventQueue eq_;
    std::unique_ptr<obs::Tracer> tracer_;
    std::unique_ptr<obs::IntervalStats> intervalStats_;
    std::unique_ptr<obs::RequestProfiler> profiler_;
    /** Set only for the DRAM backend (feeds energy/row stats). */
    std::unique_ptr<dram::DramSystem> dram_;
    std::unique_ptr<mem::MemoryBackend> backend_;
    /** Optional resilience stack over backend_: the injector wraps
     *  the store, the resilient layer wraps the injector. Declared
     *  after backend_ so destruction unwinds outside-in. */
    std::unique_ptr<mem::FaultInjector> injector_;
    std::unique_ptr<mem::ResilientBackend> resilient_;
    /** Whichever layer the controller/sink issues against. */
    mem::MemoryBackend *topBackend_ = nullptr;
    std::unique_ptr<core::OramController> ctrl_;
    /** Sharded mode (cfg.shards > 1): per-shard stacks, then the
     *  dispatcher whose controllers reference them — declared after
     *  shardParts_ so the controllers are destroyed first. */
    std::vector<ShardParts> shardParts_;
    std::unique_ptr<core::ShardedOram> sharded_;
    std::unique_ptr<workload::MemorySink> sink_;
    std::vector<std::unique_ptr<workload::CoreModel>> cores_;
};

} // namespace fp::sim

#endif // FP_SIM_SYSTEM_HH
