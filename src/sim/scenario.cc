#include "sim/scenario.hh"

#include <algorithm>
#include <iostream>
#include <map>
#include <sstream>
#include <utility>

#include "core/access_policy.hh"
#include "util/logging.hh"
#include "workload/mixes.hh"

namespace fp::sim
{

std::uint64_t
specHash(const std::string &text)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

void
specFail(const SpecSource &src, const JsonValue &node,
         const std::string &msg)
{
    fp_fatal("experiment spec %s:%zu: %s", src.path.c_str(),
             jsonLineOf(src.text, node.sourceOffset()), msg.c_str());
}

// --- typed params accessors -----------------------------------------------

namespace
{

const JsonValue *
findParam(const ExperimentSpec &spec, const std::string &key)
{
    if (!spec.params.isObject())
        return nullptr;
    return spec.params.find(key);
}

[[noreturn]] void
paramFail(const ExperimentSpec &spec, const std::string &key,
          const std::string &what)
{
    const JsonValue *node = findParam(spec, key);
    specFail(spec.source, node ? *node : spec.params,
             "params." + key + ": " + what);
}

std::uint64_t
uintOf(const ExperimentSpec &spec, const std::string &key,
       const JsonValue &v)
{
    if (!v.isNumber() || v.asNumber() < 0.0 ||
        v.asNumber() != static_cast<double>(v.asUint64()))
        paramFail(spec, key, "expected a non-negative integer");
    return v.asUint64();
}

} // namespace

bool
ExperimentSpec::hasParam(const std::string &key) const
{
    return findParam(*this, key) != nullptr;
}

std::uint64_t
ExperimentSpec::paramUint(const std::string &key) const
{
    const JsonValue *v = findParam(*this, key);
    if (!v)
        paramFail(*this, key, "required integer parameter is missing");
    return uintOf(*this, key, *v);
}

std::uint64_t
ExperimentSpec::paramUint(const std::string &key,
                          std::uint64_t def) const
{
    const JsonValue *v = findParam(*this, key);
    return v ? uintOf(*this, key, *v) : def;
}

double
ExperimentSpec::paramNum(const std::string &key, double def) const
{
    const JsonValue *v = findParam(*this, key);
    if (!v)
        return def;
    if (!v->isNumber())
        paramFail(*this, key, "expected a number");
    return v->asNumber();
}

std::string
ExperimentSpec::paramStr(const std::string &key,
                         const std::string &def) const
{
    const JsonValue *v = findParam(*this, key);
    if (!v)
        return def;
    if (!v->isString())
        paramFail(*this, key, "expected a string");
    return v->asString();
}

std::vector<std::uint64_t>
ExperimentSpec::paramUintList(const std::string &key) const
{
    const JsonValue *v = findParam(*this, key);
    if (!v || !v->isArray() || v->size() == 0)
        paramFail(*this, key, "expected a non-empty integer array");
    std::vector<std::uint64_t> out;
    out.reserve(v->size());
    for (const JsonValue &item : v->items())
        out.push_back(uintOf(*this, key, item));
    return out;
}

std::vector<double>
ExperimentSpec::paramNumList(const std::string &key) const
{
    const JsonValue *v = findParam(*this, key);
    if (!v || !v->isArray() || v->size() == 0)
        paramFail(*this, key, "expected a non-empty number array");
    std::vector<double> out;
    out.reserve(v->size());
    for (const JsonValue &item : v->items()) {
        if (!item.isNumber())
            paramFail(*this, key, "expected a non-empty number array");
        out.push_back(item.asNumber());
    }
    return out;
}

std::vector<std::string>
ExperimentSpec::paramStrList(const std::string &key) const
{
    const JsonValue *v = findParam(*this, key);
    if (!v || !v->isArray() || v->size() == 0)
        paramFail(*this, key, "expected a non-empty string array");
    std::vector<std::string> out;
    out.reserve(v->size());
    for (const JsonValue &item : v->items()) {
        if (!item.isString())
            paramFail(*this, key, "expected a non-empty string array");
        out.push_back(item.asString());
    }
    return out;
}

const JsonValue &
ExperimentSpec::paramNode(const std::string &key) const
{
    const JsonValue *v = findParam(*this, key);
    if (!v)
        paramFail(*this, key, "required parameter is missing");
    return *v;
}

// --- the override key table -----------------------------------------------

namespace
{

struct OvCtx
{
    SimConfig &cfg;
    const SpecOverride &ov;
    const SpecSource &src;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        specFail(src, ov.value, "\"" + ov.key + "\": " + what);
    }

    std::uint64_t
    uintIn(std::uint64_t lo, std::uint64_t hi) const
    {
        const JsonValue &v = ov.value;
        if (!v.isNumber() || v.asNumber() < 0.0 ||
            v.asNumber() != static_cast<double>(v.asUint64()))
            fail("expected an integer");
        const std::uint64_t n = v.asUint64();
        if (n < lo || n > hi)
            fail(strprintf("value %llu out of range [%llu, %llu]",
                           static_cast<unsigned long long>(n),
                           static_cast<unsigned long long>(lo),
                           static_cast<unsigned long long>(hi)));
        return n;
    }

    double
    numIn(double lo, double hi) const
    {
        if (!ov.value.isNumber())
            fail("expected a number");
        const double v = ov.value.asNumber();
        if (v < lo || v > hi)
            fail(strprintf("value %g out of range [%g, %g]", v, lo,
                           hi));
        return v;
    }

    bool
    boolean() const
    {
        if (!ov.value.isBool())
            fail("expected true or false");
        return ov.value.asBool();
    }

    std::string
    str() const
    {
        if (!ov.value.isString())
            fail("expected a string");
        return ov.value.asString();
    }

    /** [lo, hi] pair for window-style values ("fault-outage"). */
    std::pair<double, double>
    numPair() const
    {
        if (!ov.value.isArray() || ov.value.size() != 2 ||
            !ov.value.at(std::size_t{0}).isNumber() ||
            !ov.value.at(std::size_t{1}).isNumber())
            fail("expected a two-number array [lo, hi]");
        return {ov.value.at(std::size_t{0}).asNumber(),
                ov.value.at(std::size_t{1}).asNumber()};
    }
};

using OvHandler = void (*)(const OvCtx &);

// Keep the key names aligned with the CLI flags (docs/ARCHITECTURE.md
// documents the table; tests/test_scenario.cc round-trips it against
// the sim::with* helpers).
const std::map<std::string, OvHandler> &
overrideTable()
{
    static const std::map<std::string, OvHandler> table = {
        // --- run shape ---------------------------------------------------
        {"requests",
         [](const OvCtx &c) {
             c.cfg.requestsPerCore = c.uintIn(1, 100'000'000);
         }},
        {"leaf-level",
         [](const OvCtx &c) {
             c.cfg.controller.oram.leafLevel =
                 static_cast<unsigned>(c.uintIn(4, 40));
         }},
        {"cores",
         [](const OvCtx &c) {
             c.cfg.cores = static_cast<unsigned>(c.uintIn(1, 1024));
         }},
        {"max-outstanding",
         [](const OvCtx &c) {
             c.cfg.maxOutstanding =
                 static_cast<unsigned>(c.uintIn(1, 1'000'000));
         }},
        {"cpu-period-ticks",
         [](const OvCtx &c) {
             c.cfg.cpuPeriodTicks =
                 static_cast<Tick>(c.uintIn(1, ~std::uint64_t{0}));
         }},
        {"seed",
         [](const OvCtx &c) {
             c.cfg.seed = c.uintIn(0, ~std::uint64_t{0});
         }},
        {"shared-address-space",
         [](const OvCtx &c) {
             c.cfg.sharedAddressSpace = c.boolean();
         }},

        // --- controller variant / scheduling -----------------------------
        {"variant",
         [](const OvCtx &c) {
             // The sim::with* helpers rebuild the controller, so the
             // variant key must precede queue/cache refinements; the
             // overrides apply in spec order, making that natural.
             const std::string v = c.str();
             if (v == "traditional")
                 c.cfg = withTraditional(std::move(c.cfg));
             else if (v == "merge")
                 c.cfg = withMergeOnly(std::move(c.cfg));
             else if (v == "mac")
                 c.cfg = withMergeMac(std::move(c.cfg),
                                      std::uint64_t{1} << 20);
             else if (v == "treetop")
                 c.cfg = withMergeTreetop(std::move(c.cfg),
                                          std::uint64_t{1} << 20);
             else if (v == "insecure")
                 c.cfg = withInsecure(std::move(c.cfg));
             else
                 c.fail("unknown variant '" + v +
                        "' (traditional|merge|mac|treetop|insecure)");
         }},
        {"policy",
         [](const OvCtx &c) {
             // parsePolicyKind is fatal on unknown names but without
             // the spec location; check here for a better message.
             const std::string v = c.str();
             const auto names = core::accessPolicyNames();
             if (std::find(names.begin(), names.end(), v) ==
                 names.end())
                 c.fail("unknown policy '" + v + "'");
             c.cfg = withPolicyName(std::move(c.cfg), v);
         }},
        {"queue",
         [](const OvCtx &c) {
             c.cfg.controller.labelQueueSize =
                 static_cast<unsigned>(c.uintIn(1, 1'000'000));
         }},
        {"cache",
         [](const OvCtx &c) {
             const std::string v = c.str();
             if (v == "none")
                 c.cfg.controller.cachePolicy =
                     core::CachePolicy::none;
             else if (v == "mac")
                 c.cfg.controller.cachePolicy = core::CachePolicy::mac;
             else if (v == "treetop")
                 c.cfg.controller.cachePolicy =
                     core::CachePolicy::treetop;
             else
                 c.fail("unknown cache '" + v +
                        "' (none|mac|treetop)");
         }},
        {"cache-bytes",
         [](const OvCtx &c) {
             c.cfg.controller.cacheBudgetBytes =
                 c.uintIn(1, std::uint64_t{1} << 40);
         }},
        {"dummy-policy",
         [](const OvCtx &c) {
             const std::string v = c.str();
             if (v == "compete")
                 c.cfg.controller.dummyPolicy =
                     core::DummySelectPolicy::compete;
             else if (v == "realFirst")
                 c.cfg.controller.dummyPolicy =
                     core::DummySelectPolicy::realFirst;
             else
                 c.fail("unknown dummy-policy '" + v +
                        "' (compete|realFirst)");
         }},
        {"aging-threshold",
         [](const OvCtx &c) {
             c.cfg.controller.agingThreshold =
                 static_cast<unsigned>(c.uintIn(1, ~std::uint32_t{0}));
         }},
        {"enable-replacing",
         [](const OvCtx &c) {
             c.cfg.controller.enableDummyReplacing = c.boolean();
         }},
        {"batch-size",
         [](const OvCtx &c) {
             c.cfg.controller.batchSize =
                 static_cast<unsigned>(c.uintIn(1, 1'000'000));
         }},
        {"insecure",
         [](const OvCtx &c) { c.cfg.insecure = c.boolean(); }},

        // --- structure ---------------------------------------------------
        {"layout",
         [](const OvCtx &c) {
             const std::string v = c.str();
             if (v == "subtree")
                 c.cfg.controller.layout =
                     dram::LayoutPolicy::subtree;
             else if (v == "linear")
                 c.cfg.controller.layout = dram::LayoutPolicy::linear;
             else
                 c.fail("unknown layout '" + v +
                        "' (subtree|linear)");
         }},
        {"recursion-depth",
         [](const OvCtx &c) {
             c.cfg.controller.recursionDepth =
                 static_cast<unsigned>(c.uintIn(0, 8));
         }},
        {"recursion-fanout",
         [](const OvCtx &c) {
             c.cfg.controller.recursionFanout =
                 static_cast<unsigned>(c.uintIn(2, 1024));
         }},
        {"plb-entries",
         [](const OvCtx &c) {
             c.cfg.controller.plbEntries = static_cast<std::size_t>(
                 c.uintIn(0, std::uint64_t{1} << 32));
         }},
        {"periodic-interval-ticks",
         [](const OvCtx &c) {
             c.cfg.controller.periodicIntervalTicks =
                 static_cast<Tick>(c.uintIn(0, ~std::uint64_t{0}));
         }},
        {"integrity",
         [](const OvCtx &c) {
             c.cfg.controller.enableIntegrity = c.boolean();
         }},
        {"payload-bytes",
         [](const OvCtx &c) {
             c.cfg.controller.oram.payloadBytes =
                 static_cast<std::size_t>(c.uintIn(0, 1 << 20));
         }},
        {"stash-capacity",
         [](const OvCtx &c) {
             c.cfg.controller.oram.stashCapacity =
                 static_cast<std::size_t>(
                     c.uintIn(1, std::uint64_t{1} << 32));
         }},
        {"oram-seed",
         [](const OvCtx &c) {
             c.cfg.controller.oram.seed =
                 c.uintIn(0, ~std::uint64_t{0});
         }},

        // --- memory system -----------------------------------------------
        {"channels",
         [](const OvCtx &c) {
             // Replaces the whole DRAM parameter block, so list it
             // before page-policy when both appear.
             c.cfg.dram = dram::DramParams::ddr3_1600(
                 static_cast<unsigned>(c.uintIn(1, 8)));
         }},
        {"page-policy",
         [](const OvCtx &c) {
             const std::string v = c.str();
             if (v == "open")
                 c.cfg.dram.pagePolicy = dram::PagePolicy::open;
             else if (v == "closed")
                 c.cfg.dram.pagePolicy = dram::PagePolicy::closed;
             else
                 c.fail("unknown page-policy '" + v +
                        "' (open|closed)");
         }},
        {"backend",
         [](const OvCtx &c) {
             const std::string v = c.str();
             const auto names = backendKindNames();
             if (std::find(names.begin(), names.end(), v) ==
                 names.end())
                 c.fail("unknown backend '" + v + "'");
             c.cfg.backendKind = parseBackendKind(v);
         }},
        {"net-latency-us",
         [](const OvCtx &c) {
             c.cfg.net.oneWayLatencyUs = c.numIn(0.0, 1e9);
         }},
        {"net-gbps",
         [](const OvCtx &c) {
             c.cfg.net.linkGbps = c.numIn(1e-3, 1e6);
         }},
        {"net-window",
         [](const OvCtx &c) {
             c.cfg.net.window =
                 static_cast<unsigned>(c.uintIn(1, 1'000'000));
         }},
        {"shards",
         [](const OvCtx &c) {
             c.cfg.shards = static_cast<unsigned>(c.uintIn(1, 1024));
         }},
        {"shard-window",
         [](const OvCtx &c) {
             c.cfg.shardWindow =
                 static_cast<unsigned>(c.uintIn(1, 1'000'000));
         }},

        // --- faults / retry ----------------------------------------------
        {"fault-loss-rate",
         [](const OvCtx &c) {
             c.cfg.faults.lossRate = c.numIn(0.0, 1.0);
         }},
        {"fault-error-rate",
         [](const OvCtx &c) {
             c.cfg.faults.errorRate = c.numIn(0.0, 1.0);
         }},
        {"fault-spike-rate",
         [](const OvCtx &c) {
             c.cfg.faults.spikeRate = c.numIn(0.0, 1.0);
         }},
        {"fault-spike-us",
         [](const OvCtx &c) {
             c.cfg.faults.spikeUs = c.numIn(0.0, 1e9);
         }},
        {"fault-outage",
         [](const OvCtx &c) {
             const auto [t0, t1] = c.numPair();
             if (t0 < 0.0 || t1 <= t0)
                 c.fail("outage window needs 0 <= T0 < T1");
             c.cfg.faults.outageStartUs = t0;
             c.cfg.faults.outageEndUs = t1;
         }},
        {"fault-seed",
         [](const OvCtx &c) {
             c.cfg.faults.seed = c.uintIn(0, ~std::uint64_t{0});
         }},
        {"retry-timeout-us",
         [](const OvCtx &c) {
             c.cfg.retry.timeoutUs = c.numIn(0.0, 1e9);
         }},
        {"retry-max",
         [](const OvCtx &c) {
             c.cfg.retry.maxRetries =
                 static_cast<unsigned>(c.uintIn(0, 1'000'000));
         }},
        {"retry-backoff",
         [](const OvCtx &c) {
             const auto [base, cap] = c.numPair();
             if (base < 0.0 || cap < base)
                 c.fail("backoff needs 0 <= BASE <= CAP");
             c.cfg.retry.backoffBaseUs = base;
             c.cfg.retry.backoffCapUs = cap;
         }},
    };
    return table;
}

bool
keyPresent(const std::vector<SpecOverride> &ovs, const char *key)
{
    for (const SpecOverride &ov : ovs)
        if (ov.key == key)
            return true;
    return false;
}

} // namespace

void
applySpecOverride(SimConfig &cfg, const SpecOverride &ov,
                  const SpecSource &src)
{
    const auto &table = overrideTable();
    auto it = table.find(ov.key);
    if (it == table.end()) {
        std::string known;
        for (const auto &[name, fn] : table) {
            (void)fn;
            known += known.empty() ? name : ", " + name;
        }
        specFail(src, ov.value,
                 "unknown configuration key \"" + ov.key +
                     "\" (known keys: " + known + ")");
    }
    it->second(OvCtx{cfg, ov, src});
}

void
applySpecOverrides(SimConfig &cfg,
                   const std::vector<SpecOverride> &ovs,
                   const SpecSource &src, const JsonValue &where)
{
    for (const SpecOverride &ov : ovs)
        applySpecOverride(cfg, ov, src);

    // Cross-key conflicts: catch configurations that would only
    // misbehave (or silently do nothing) deep inside a sweep.
    static const char *const scheduler_keys[] = {
        "policy",          "queue",      "cache",
        "cache-bytes",     "dummy-policy", "aging-threshold",
        "enable-replacing", "batch-size",
    };
    if (cfg.insecure) {
        for (const char *key : scheduler_keys) {
            if (keyPresent(ovs, key))
                specFail(src, where,
                         std::string("\"") + key +
                             "\" conflicts with the insecure "
                             "baseline (it has no ORAM scheduler)");
        }
        if (cfg.shards > 1)
            specFail(src, where,
                     "\"shards\" > 1 conflicts with the insecure "
                     "baseline (sharding dispatches over ORAM "
                     "controllers)");
    }
    if (keyPresent(ovs, "batch-size") &&
        cfg.controller.policy != core::PolicyKind::batched) {
        specFail(src, where,
                 "\"batch-size\" requires the batched policy (add "
                 "\"policy\": \"batched\")");
    }
    if (keyPresent(ovs, "cache-bytes") &&
        cfg.controller.cachePolicy == core::CachePolicy::none) {
        specFail(src, where,
                 "\"cache-bytes\" has no effect without a cache "
                 "(use \"variant\": \"mac\"/\"treetop\" or "
                 "\"cache\": \"mac\"/\"treetop\")");
    }
}

// --- grid / point expansion ----------------------------------------------

std::vector<SweepPoint>
expandSpecPoints(const ExperimentSpec &spec, const SimConfig &base,
                 const std::vector<std::string> &mixes)
{
    // Explicit points; a spec with none gets a single anonymous point
    // so a pure-grid (or pure-mix) spec still expands.
    std::vector<SpecPoint> points = spec.points;
    if (points.empty())
        points.push_back(SpecPoint{"base", "", {}});

    // Grid combinations, axes nesting rightmost-fastest.
    std::vector<std::vector<SpecOverride>> combos{{}};
    for (const GridAxis &axis : spec.grid) {
        std::vector<std::vector<SpecOverride>> next;
        next.reserve(combos.size() * axis.values.size());
        for (const auto &combo : combos) {
            for (const JsonValue &v : axis.values) {
                auto extended = combo;
                extended.push_back(SpecOverride{axis.key, v});
                next.push_back(std::move(extended));
            }
        }
        combos = std::move(next);
    }

    auto comboName = [](const std::vector<SpecOverride> &combo) {
        std::string name;
        for (const SpecOverride &ov : combo) {
            std::string v;
            if (ov.value.isString()) {
                v = ov.value.asString();
            } else if (ov.value.isBool()) {
                v = ov.value.asBool() ? "on" : "off";
            } else if (ov.value.isNumber()) {
                std::ostringstream os;
                os << ov.value.asNumber();
                v = os.str();
            }
            name += (name.empty() ? "" : ",") + ov.key + "=" + v;
        }
        return name;
    };

    std::vector<SweepPoint> out;
    out.reserve(points.size() * combos.size() * mixes.size());
    for (const SpecPoint &point : points) {
        for (const auto &combo : combos) {
            SimConfig cfg = base;
            applySpecOverrides(cfg, point.overrides, spec.source,
                               spec.params);
            applySpecOverrides(cfg, combo, spec.source, spec.params);

            std::string name = point.name;
            if (!combo.empty())
                name += (name.empty() ? "" : "/") + comboName(combo);

            if (!point.mix.empty()) {
                out.push_back(pointFromMix(name, cfg, point.mix));
                continue;
            }
            for (const std::string &mix : mixes) {
                const std::string full =
                    mixes.size() > 1 ? mix + "/" + name : name;
                out.push_back(pointFromMix(full, cfg, mix));
            }
        }
    }
    return out;
}

// --- ScenarioContext -------------------------------------------------------

ScenarioContext::ScenarioContext(const ExperimentSpec &spec_,
                                 const CliArgs &args_)
    : spec(spec_), args(args_)
{
    // Mirror the historical bench option ordering exactly so spec
    // runs stay byte-identical to the binaries they replace:
    // defaults (now from the spec's base block), then --requests /
    // --leaf-level, then --quick, then the shared flag groups.
    base = SimConfig::paperDefault();
    applySpecOverrides(base, spec.base, spec.source, spec.params);

    base.requestsPerCore = static_cast<std::uint64_t>(args.getInt(
        "requests",
        static_cast<std::int64_t>(base.requestsPerCore)));
    base.controller.oram.leafLevel =
        static_cast<unsigned>(args.getInt(
            "leaf-level", base.controller.oram.leafLevel));
    if (args.getBool("quick")) {
        base.requestsPerCore = 150;
        base.controller.oram.leafLevel = 14;
    }

    csv = args.getBool("csv");
    sweepOpt = sweepOptionsFromArgs(args);

    applyObsFlags(base, args);
    applyBackendFlags(base, args);

    policyOverride = args.getString("policy", "");
    if (!policyOverride.empty())
        core::parsePolicyKind(policyOverride); // fatal if unknown
    const std::int64_t batch = args.getInt("batch-size", 0);
    if (args.has("batch-size") && batch < 1)
        fp_fatal("--batch-size must be at least 1 (got %lld)",
                 static_cast<long long>(batch));
    batchSizeOverride = static_cast<unsigned>(batch);
    base = applyPolicy(std::move(base));

    const std::string mix_flag = args.getString("mixes", "");
    if (!mix_flag.empty()) {
        std::stringstream ss(mix_flag);
        std::string item;
        while (std::getline(ss, item, ','))
            mixes.push_back(item);
    } else if (!spec.defaultMixes.empty()) {
        mixes = spec.defaultMixes;
    } else {
        mixes = workload::mixNames();
    }
}

SimConfig
ScenarioContext::applyPolicy(SimConfig cfg) const
{
    if (!policyOverride.empty())
        cfg = withPolicyName(std::move(cfg), policyOverride);
    if (batchSizeOverride > 0)
        cfg.controller.batchSize = batchSizeOverride;
    return cfg;
}

SimConfig
ScenarioContext::pointConfig(const SpecPoint &point) const
{
    SimConfig cfg = base;
    applySpecOverrides(cfg, point.overrides, spec.source,
                       spec.params);
    return cfg;
}

void
ScenarioContext::stamp(RunResult &r) const
{
    r.specName = spec.name;
    r.specHash = spec.source.hash;
}

std::vector<RunResult>
ScenarioContext::run(std::vector<SweepPoint> points) const
{
    auto outcomes = runRaw(std::move(points));
    std::vector<RunResult> results;
    results.reserve(outcomes.size());
    for (const SweepOutcome &out : outcomes) {
        if (!out.ok)
            fp_fatal("sweep point '%s' failed: %s", out.name.c_str(),
                     out.error.c_str());
        results.push_back(out.result);
    }
    return results;
}

std::vector<SweepOutcome>
ScenarioContext::runRaw(std::vector<SweepPoint> points) const
{
    // --policy/--batch-size override every point's per-series choice
    // (series transforms rebuild the controller config after the base
    // was built, so the flag must be re-applied per point).
    if (!policyOverride.empty() || batchSizeOverride > 0) {
        for (SweepPoint &p : points) {
            if (p.cfg.insecure)
                continue; // the insecure baseline has no scheduler
            p.cfg = applyPolicy(std::move(p.cfg));
        }
    }
    SweepRunner runner(sweepOpt);
    auto outcomes = runner.run(std::move(points));
    for (SweepOutcome &out : outcomes) {
        if (out.ok)
            stamp(out.result);
    }
    return outcomes;
}

void
ScenarioContext::runTasks(std::vector<SweepTask> tasks) const
{
    SweepRunner runner(sweepOpt);
    auto outcomes = runner.runTasks(std::move(tasks));
    for (const TaskOutcome &out : outcomes) {
        if (!out.ok)
            fp_fatal("task '%s' failed: %s", out.name.c_str(),
                     out.error.c_str());
    }
}

void
ScenarioContext::emit(const TextTable &table) const
{
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n";
}

void
ScenarioContext::banner(const std::string &figure,
                        const std::string &paper_says) const
{
    if (csv)
        return; // keep CSV output machine-clean
    std::cout << "==================================================="
                 "=====\n"
              << figure << "\n"
              << "paper reports: " << paper_says << "\n"
              << "==================================================="
                 "=====\n\n";
}

// --- scenario registry -----------------------------------------------------

namespace
{

std::map<std::string, ScenarioFn> &
scenarioRegistry()
{
    static std::map<std::string, ScenarioFn> registry;
    return registry;
}

/**
 * The generic data-only scenario: expand points x grid x mixes, run,
 * and emit the headline metrics. A brand-new experiment that needs no
 * custom normalisation is one committed JSON file with
 * "scenario": "sweep".
 */
void
sweepScenario(ScenarioContext &ctx)
{
    ctx.banner("Experiment: " + ctx.spec.name,
               ctx.spec.description.empty() ? "(generic sweep)"
                                            : ctx.spec.description);
    auto points = expandSpecPoints(ctx.spec, ctx.base, ctx.mixes);
    std::vector<std::string> names;
    names.reserve(points.size());
    for (const SweepPoint &p : points)
        names.push_back(p.name);
    auto results = ctx.run(std::move(points));

    TextTable t(ctx.spec.name);
    t.setHeader({"point", "exec_ms", "avg_latency_ns", "path_len",
                 "buckets/access", "real", "dummy"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        t.addRow({names[i],
                  TextTable::fmt(static_cast<double>(
                                     r.executionTicks) /
                                 1e9),
                  TextTable::fmt(r.avgLlcLatencyNs),
                  TextTable::fmt(r.avgReadPathLen),
                  TextTable::fmt(r.avgDramBucketsRead),
                  TextTable::fmt(r.realAccesses),
                  TextTable::fmt(r.dummyAccesses)});
    }
    ctx.emit(t);
}

} // namespace

void
registerScenario(const std::string &name, ScenarioFn fn)
{
    scenarioRegistry()[name] = std::move(fn);
}

std::vector<std::string>
scenarioNames()
{
    std::vector<std::string> names;
    names.reserve(scenarioRegistry().size() + 1);
    names.push_back("sweep");
    for (const auto &[name, fn] : scenarioRegistry()) {
        (void)fn;
        if (name != "sweep")
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

bool
haveScenario(const std::string &name)
{
    return name == "sweep" ||
           scenarioRegistry().count(name) != 0;
}

int
runSpec(const ExperimentSpec &spec, const CliArgs &args)
{
    const auto &registry = scenarioRegistry();
    auto it = registry.find(spec.scenario);
    ScenarioFn fn;
    if (it != registry.end()) {
        fn = it->second;
    } else if (spec.scenario == "sweep") {
        fn = sweepScenario;
    } else {
        std::string known;
        for (const std::string &name : scenarioNames())
            known += known.empty() ? name : ", " + name;
        specFail(spec.source, spec.params,
                 "unknown scenario \"" + spec.scenario +
                     "\" (registered: " + known + ")");
    }
    ScenarioContext ctx(spec, args);
    fn(ctx);
    return 0;
}

} // namespace fp::sim
