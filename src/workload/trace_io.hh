/**
 * @file
 * Plain-text trace capture and replay, so experiments can run real
 * recorded LLC-miss traces instead of (or alongside) the synthetic
 * profiles.
 *
 * Format: one request per line, `r <addr>` or `w <addr>` with the
 * address in decimal or 0x-hex; `#` starts a comment. This is
 * deliberately trivial so traces can be produced by any external
 * tool (a gem5 probe, a Pin tool, a script).
 */

#ifndef FP_WORKLOAD_TRACE_IO_HH
#define FP_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/synthetic.hh"

namespace fp::workload
{

/** Parse a trace from a stream. Malformed lines are fatal. */
std::vector<MemRequest> readTrace(std::istream &in);

/** Load a trace file (fatal if unreadable). */
std::vector<MemRequest> loadTrace(const std::string &path);

/** Serialise a trace. */
void writeTrace(std::ostream &out,
                const std::vector<MemRequest> &trace);

/** Save a trace file (fatal if unwritable). */
void saveTrace(const std::string &path,
               const std::vector<MemRequest> &trace);

/**
 * A WorkloadProfile-compatible replay source: feeds a fixed request
 * vector, cycling if the consumer outruns it.
 */
class TraceStream
{
  public:
    explicit TraceStream(std::vector<MemRequest> trace);

    MemRequest next();

    std::size_t size() const { return trace_.size(); }
    std::size_t position() const { return pos_; }

  private:
    std::vector<MemRequest> trace_;
    std::size_t pos_ = 0;
};

} // namespace fp::workload

#endif // FP_WORKLOAD_TRACE_IO_HH
