#include "workload/mixes.hh"

#include <map>

#include "util/logging.hh"
#include "util/random.hh"
#include "workload/spec_profiles.hh"

namespace fp::workload
{

namespace
{

const std::map<std::string, std::vector<std::string>> &
mixTable()
{
    // Paper Table 2, verbatim composition.
    static const std::map<std::string, std::vector<std::string>> t = {
        {"Mix1", {"povray", "sjeng", "GemsFDTD", "h264ref"}},
        {"Mix2", {"bzip2", "tonto", "omnetpp", "astar"}},
        {"Mix3", {"gcc", "bwaves", "mcf", "gromacs"}},
        {"Mix4", {"libquantum", "lbm", "wrf", "namd"}},
        {"Mix5", {"povray", "povray", "sjeng", "sjeng"}},
        {"Mix6", {"namd", "namd", "gromacs", "gromacs"}},
        {"Mix7", {"bwaves", "bwaves", "bwaves", "bwaves"}},
        {"Mix8", {"h264ref", "h264ref", "h264ref", "h264ref"}},
        {"Mix9", {"calculix", "h264ref", "mcf", "sjeng"}},
        {"Mix10", {"bzip2", "povray", "libquantum", "libquantum"}},
    };
    return t;
}

} // anonymous namespace

std::vector<std::string>
mixNames()
{
    return {"Mix1", "Mix2", "Mix3", "Mix4", "Mix5",
            "Mix6", "Mix7", "Mix8", "Mix9", "Mix10"};
}

std::vector<std::string>
mixMembers(const std::string &mix)
{
    auto it = mixTable().find(mix);
    if (it == mixTable().end())
        fp_fatal("unknown mix '%s'", mix.c_str());
    return it->second;
}

std::vector<WorkloadProfile>
mixProfiles(const std::string &mix)
{
    std::vector<WorkloadProfile> out;
    for (const auto &name : mixMembers(mix))
        out.push_back(specProfile(name));
    return out;
}

std::vector<WorkloadProfile>
makeMixForCores(unsigned cores, std::uint64_t seed)
{
    fp_assert(cores >= 1, "makeMixForCores: zero cores");
    Rng rng(seed ^ 0x2019);
    auto lg = lowOverheadGroup();
    auto hg = highOverheadGroup();
    std::vector<WorkloadProfile> out;
    for (unsigned c = 0; c < cores; ++c) {
        // Alternate groups so every mix exercises both behaviours,
        // mirroring the paper's Mix9/Mix10 construction.
        const auto &group = (c % 2 == 0) ? hg : lg;
        const std::string &name =
            group[rng.uniformInt(group.size())];
        out.push_back(specProfile(name));
    }
    return out;
}

} // namespace fp::workload
