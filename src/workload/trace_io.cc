#include "workload/trace_io.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace fp::workload
{

std::vector<MemRequest>
readTrace(std::istream &in)
{
    std::vector<MemRequest> trace;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string op;
        if (!(ls >> op))
            continue; // blank/comment line
        std::string addr_str;
        if (!(ls >> addr_str)) {
            fp_fatal("trace line %zu: missing address", lineno);
        }
        MemRequest req;
        if (op == "r" || op == "R") {
            req.isWrite = false;
        } else if (op == "w" || op == "W") {
            req.isWrite = true;
        } else {
            fp_fatal("trace line %zu: bad op '%s'", lineno,
                     op.c_str());
        }
        req.addr = std::strtoull(addr_str.c_str(), nullptr, 0);
        trace.push_back(req);
    }
    return trace;
}

std::vector<MemRequest>
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fp_fatal("cannot open trace file '%s'", path.c_str());
    return readTrace(in);
}

void
writeTrace(std::ostream &out, const std::vector<MemRequest> &trace)
{
    out << "# fork-path ORAM trace: <r|w> <block address>\n";
    for (const auto &req : trace)
        out << (req.isWrite ? 'w' : 'r') << ' ' << req.addr << '\n';
}

void
saveTrace(const std::string &path,
          const std::vector<MemRequest> &trace)
{
    std::ofstream out(path);
    if (!out)
        fp_fatal("cannot write trace file '%s'", path.c_str());
    writeTrace(out, trace);
}

TraceStream::TraceStream(std::vector<MemRequest> trace)
    : trace_(std::move(trace))
{
    fp_assert(!trace_.empty(), "TraceStream: empty trace");
}

MemRequest
TraceStream::next()
{
    MemRequest req = trace_[pos_];
    pos_ = (pos_ + 1) % trace_.size();
    return req;
}

} // namespace fp::workload
