#include "workload/spec_profiles.hh"

#include <map>

#include "util/logging.hh"

namespace fp::workload
{

namespace
{

WorkloadProfile
make(const std::string &name, double interval, std::uint64_t ws_kib,
     double alpha, double seq, double wfrac, bool hg)
{
    WorkloadProfile p;
    p.name = name;
    p.missIntervalCycles = interval;
    p.workingSetBlocks = ws_kib * 1024 / 64; // 64 B blocks
    p.zipfAlpha = alpha;
    p.seqFraction = seq;
    p.writeFraction = wfrac;
    p.highOverheadGroup = hg;
    return p;
}

const std::map<std::string, WorkloadProfile> &
table()
{
    // name, miss interval (cycles), working set (KiB), zipf alpha,
    // sequential fraction, write fraction, HG membership.
    //
    // The zipf skews reflect Table 1's small 1 MB shared LLC: reuse
    // distances beyond 1 MB recur as misses, so the *miss* stream
    // keeps moderate temporal locality (alpha <= 0.85; a 200-block
    // stash catches only a small fraction, an on-chip MB-scale cache
    // catches noticeably more). Streaming codes (libquantum, lbm,
    // bwaves) have little.
    static const std::map<std::string, WorkloadProfile> t = {
        // --- low ORAM overhead group (LG) --------------------------------
        {"povray", make("povray", 6000, 2048, 0.85, 0.10, 0.20, false)},
        {"sjeng", make("sjeng", 4500, 4096, 0.85, 0.05, 0.25, false)},
        {"GemsFDTD",
         make("GemsFDTD", 1800, 32768, 0.7, 0.55, 0.35, false)},
        {"h264ref",
         make("h264ref", 2600, 8192, 0.8, 0.40, 0.25, false)},
        {"bzip2", make("bzip2", 2200, 16384, 0.8, 0.35, 0.30, false)},
        {"tonto", make("tonto", 3800, 4096, 0.85, 0.15, 0.25, false)},
        {"omnetpp",
         make("omnetpp", 1700, 24576, 0.8, 0.05, 0.30, false)},
        {"astar", make("astar", 1900, 16384, 0.8, 0.10, 0.25, false)},
        {"calculix",
         make("calculix", 5200, 4096, 0.8, 0.30, 0.25, false)},
        // --- high ORAM overhead group (HG) --------------------------------
        {"gcc", make("gcc", 1400, 32768, 0.8, 0.25, 0.35, true)},
        {"bwaves", make("bwaves", 700, 98304, 0.5, 0.65, 0.30, true)},
        {"mcf", make("mcf", 450, 131072, 0.85, 0.05, 0.30, true)},
        {"gromacs",
         make("gromacs", 2600, 12288, 0.8, 0.30, 0.30, true)},
        {"libquantum",
         make("libquantum", 550, 65536, 0.3, 0.80, 0.25, true)},
        {"lbm", make("lbm", 500, 131072, 0.35, 0.75, 0.45, true)},
        {"wrf", make("wrf", 1100, 49152, 0.6, 0.50, 0.35, true)},
        {"namd", make("namd", 2900, 8192, 0.8, 0.25, 0.25, true)},
    };
    return t;
}

/** Apply phase duty-cycling to selected LG benchmarks. */
const std::map<std::string, WorkloadProfile> &
phasedTable()
{
    static const std::map<std::string, WorkloadProfile> t = [] {
        auto copy = table();
        // The paper attributes Mix2's extra dummies to periods of
        // very low intensity; its members (and a couple of other LG
        // codes) get pronounced low-intensity phases.
        for (const char *name :
             {"bzip2", "tonto", "omnetpp", "astar"}) {
            auto &p = copy.at(name);
            p.phasePeriodMisses = 1000;
            p.phaseLowFraction = 0.3;
            p.phaseLowFactor = 4.0;
        }
        return copy;
    }();
    return t;
}

} // anonymous namespace

const WorkloadProfile &
specProfile(const std::string &name)
{
    auto it = phasedTable().find(name);
    if (it == table().end())
        fp_fatal("unknown SPEC profile '%s'", name.c_str());
    return it->second;
}

std::vector<std::string>
specNames()
{
    std::vector<std::string> names;
    for (const auto &[name, profile] : phasedTable())
        names.push_back(name);
    return names;
}

std::vector<std::string>
lowOverheadGroup()
{
    std::vector<std::string> names;
    for (const auto &[name, profile] : phasedTable())
        if (!profile.highOverheadGroup)
            names.push_back(name);
    return names;
}

std::vector<std::string>
highOverheadGroup()
{
    std::vector<std::string> names;
    for (const auto &[name, profile] : phasedTable())
        if (profile.highOverheadGroup)
            names.push_back(name);
    return names;
}

} // namespace fp::workload
