#include "workload/core_model.hh"

#include "util/logging.hh"

namespace fp::workload
{

CoreModel::CoreModel(const CoreParams &params,
                     const WorkloadProfile &profile,
                     BlockAddr region_base, std::uint64_t seed,
                     EventQueue &eq, MemorySink &sink)
    : params_(params),
      stream_(profile, region_base,
              Rng(seed ^ (0xc0de + params.coreId * 7919))),
      eq_(eq), sink_(sink),
      rng_(seed ^ (0x6a9 + params.coreId * 104729)),
      missLatency_(256, 100.0)
{
}

void
CoreModel::start()
{
    nextIssueAt_ = eq_.now();
    tryIssue();
}

void
CoreModel::scheduleTry(Tick when)
{
    if (tryScheduled_)
        return;
    tryScheduled_ = true;
    eq_.schedule(when, [this] {
        tryScheduled_ = false;
        tryIssue();
    });
}

void
CoreModel::tryIssue()
{
    while (true) {
        if (issued_ == params_.totalRequests)
            return; // responses will mark us done
        if (outstanding_ >= params_.maxOutstanding)
            return; // a response will re-trigger
        Tick now = eq_.now();
        if (now < nextIssueAt_) {
            scheduleTry(nextIssueAt_);
            return;
        }
        if (!sink_.canAccept()) {
            scheduleTry(now + params_.retryCycles *
                                  params_.cpuPeriodTicks);
            return;
        }

        MemRequest req = stream_.next();
        Tick issue_tick = now;
        // Book-keep BEFORE issuing: the sink may satisfy the request
        // synchronously (stash shortcut, store-to-load forwarding,
        // MAC data hit), re-entering onResponse inside access().
        ++issued_;
        ++outstanding_;
        std::uint64_t gap_cycles = rng_.geometric(
            stream_.profile().missIntervalAt(issued_));
        nextIssueAt_ = now + gap_cycles * params_.cpuPeriodTicks;

        bool ok = sink_.access(req, [this, issue_tick](Tick t) {
            onResponse(issue_tick);
            (void)t;
        });
        if (!ok) {
            --issued_;
            --outstanding_;
            nextIssueAt_ = now;
            scheduleTry(now + params_.retryCycles *
                                  params_.cpuPeriodTicks);
            return;
        }
    }
}

void
CoreModel::onResponse(Tick issue_tick)
{
    fp_assert(outstanding_ > 0, "core response underflow");
    --outstanding_;
    missLatency_.sample(fp::ticksToNs(eq_.now() - issue_tick));
    if (done()) {
        finishTick_ = eq_.now();
        if (onDone_)
            onDone_();
        return;
    }
    tryIssue();
}

} // namespace fp::workload
