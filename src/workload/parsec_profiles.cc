#include "workload/parsec_profiles.hh"

#include <map>

#include "util/logging.hh"

namespace fp::workload
{

namespace
{

WorkloadProfile
make(const std::string &name, double interval, std::uint64_t ws_kib,
     double alpha, double seq, double wfrac)
{
    WorkloadProfile p;
    p.name = name;
    p.missIntervalCycles = interval;
    p.workingSetBlocks = ws_kib * 1024 / 64;
    p.zipfAlpha = alpha;
    p.seqFraction = seq;
    p.writeFraction = wfrac;
    return p;
}

const std::map<std::string, WorkloadProfile> &
table()
{
    static const std::map<std::string, WorkloadProfile> t = {
        {"blackscholes",
         make("blackscholes", 7000, 2048, 0.8, 0.50, 0.20)},
        {"bodytrack", make("bodytrack", 6000, 8192, 0.7, 0.30, 0.25)},
        {"canneal", make("canneal", 600, 131072, 0.4, 0.05, 0.30)},
        {"dedup", make("dedup", 1800, 65536, 0.5, 0.45, 0.40)},
        {"ferret", make("ferret", 2500, 32768, 0.6, 0.30, 0.30)},
        {"fluidanimate",
         make("fluidanimate", 2200, 24576, 0.5, 0.55, 0.40)},
        {"freqmine", make("freqmine", 3000, 32768, 0.6, 0.25, 0.30)},
        {"streamcluster",
         make("streamcluster", 800, 49152, 0.3, 0.70, 0.25)},
        {"swaptions", make("swaptions", 9000, 1024, 0.85, 0.20, 0.20)},
        {"x264", make("x264", 5000, 16384, 0.7, 0.45, 0.30)},
    };
    return t;
}

} // anonymous namespace

const WorkloadProfile &
parsecProfile(const std::string &name)
{
    auto it = table().find(name);
    if (it == table().end())
        fp_fatal("unknown PARSEC profile '%s'", name.c_str());
    return it->second;
}

std::vector<std::string>
parsecNames()
{
    std::vector<std::string> names;
    for (const auto &[name, profile] : table())
        names.push_back(name);
    return names;
}

std::vector<WorkloadProfile>
parsecThreads(const std::string &name, unsigned threads)
{
    fp_assert(threads >= 1, "parsecThreads: zero threads");
    std::vector<WorkloadProfile> out(threads, parsecProfile(name));
    return out;
}

} // namespace fp::workload
