/**
 * @file
 * The multi-programmed workload mixes of the paper's Table 2, plus a
 * generator of same-methodology mixes for other core counts
 * (Figure 17a uses 1/2/4/8-thread mixes "selected following the
 * similar method").
 */

#ifndef FP_WORKLOAD_MIXES_HH
#define FP_WORKLOAD_MIXES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/synthetic.hh"

namespace fp::workload
{

/** "Mix1" .. "Mix10" in paper order. */
std::vector<std::string> mixNames();

/** Benchmark names composing a mix (always 4 entries, Table 2). */
std::vector<std::string> mixMembers(const std::string &mix);

/** Profiles of a mix's member benchmarks. */
std::vector<WorkloadProfile> mixProfiles(const std::string &mix);

/**
 * Build a mix of @p cores benchmarks with the paper's method
 * (random picks from both overhead groups), deterministically from
 * @p seed.
 */
std::vector<WorkloadProfile> makeMixForCores(unsigned cores,
                                             std::uint64_t seed);

} // namespace fp::workload

#endif // FP_WORKLOAD_MIXES_HH
