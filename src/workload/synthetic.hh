/**
 * @file
 * Synthetic LLC-miss stream generation.
 *
 * The paper drives its evaluation with SPEC 2006 / PARSEC running on
 * gem5. Neither is available here, so each benchmark is replaced by a
 * WorkloadProfile capturing exactly the properties the ORAM results
 * depend on (see DESIGN.md): how often a thread misses the LLC when
 * not stalled, how big and how skewed its touched block set is, how
 * sequential its misses are, and its write share.
 *
 * The AddressStream turns a profile into a concrete reproducible
 * stream: a mixture of strided (sequential) runs and Zipf-distributed
 * re-references over the working set.
 */

#ifndef FP_WORKLOAD_SYNTHETIC_HH
#define FP_WORKLOAD_SYNTHETIC_HH

#include <cstdint>
#include <string>

#include "util/random.hh"
#include "util/types.hh"

namespace fp::workload
{

/** One logical LLC miss. */
struct MemRequest
{
    BlockAddr addr = 0;
    bool isWrite = false;
};

/** Benchmark-shaped generator parameters. */
struct WorkloadProfile
{
    std::string name;

    /** Mean CPU cycles of compute between LLC misses (unstalled). */
    double missIntervalCycles = 1000.0;

    /** Blocks the benchmark touches. */
    std::uint64_t workingSetBlocks = 1 << 16;

    /** Zipf skew over the working set (0 = uniform). */
    double zipfAlpha = 0.6;

    /** Fraction of misses that continue a sequential run. */
    double seqFraction = 0.3;

    /** Mean length of a sequential run, in blocks. */
    double seqRunLength = 8.0;

    /** Fraction of misses that are writes (dirty evictions). */
    double writeFraction = 0.25;

    /** High-ORAM-overhead group membership (paper Table 2). */
    bool highOverheadGroup = false;

    // --- phase behaviour ---------------------------------------------
    // The paper attributes Mix2's extra dummy requests to workloads
    // with "really low memory intensity in some periods"; these two
    // knobs model that duty-cycling. A phase period of 0 disables it.

    /** Misses per full high+low phase cycle (0 = steady). */
    std::uint64_t phasePeriodMisses = 0;

    /** Fraction of each cycle spent in the low-intensity phase. */
    double phaseLowFraction = 0.5;

    /** Miss-interval multiplier during the low-intensity phase. */
    double phaseLowFactor = 8.0;

    /** Effective mean miss interval for the @p nth miss. */
    double
    missIntervalAt(std::uint64_t nth) const
    {
        if (phasePeriodMisses == 0)
            return missIntervalCycles;
        std::uint64_t pos = nth % phasePeriodMisses;
        auto low_len = static_cast<std::uint64_t>(
            phaseLowFraction *
            static_cast<double>(phasePeriodMisses));
        bool low = pos < low_len;
        return low ? missIntervalCycles * phaseLowFactor
                   : missIntervalCycles;
    }
};

class AddressStream
{
  public:
    /**
     * @param profile Generator shape.
     * @param base    First block address of this stream's region
     *                (cores get disjoint regions; threads of one
     *                process share one).
     * @param rng     Private generator (fork from the experiment
     *                seed for reproducibility).
     */
    AddressStream(const WorkloadProfile &profile, BlockAddr base,
                  Rng rng);

    /** Produce the next miss. */
    MemRequest next();

    const WorkloadProfile &profile() const { return profile_; }
    BlockAddr base() const { return base_; }

  private:
    WorkloadProfile profile_;
    BlockAddr base_;
    Rng rng_;
    ZipfSampler zipf_;

    /** State of the current sequential run. */
    std::uint64_t seqPos_ = 0;
    std::uint64_t seqLeft_ = 0;
};

} // namespace fp::workload

#endif // FP_WORKLOAD_SYNTHETIC_HH
