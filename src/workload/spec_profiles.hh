/**
 * @file
 * SPEC CPU2006-shaped workload profiles.
 *
 * The parameters are synthetic calibrations, not measurements: each
 * benchmark named in the paper's Table 2 gets a profile whose memory
 * intensity, working-set size and locality are chosen to be
 * *relatively* faithful (mcf/lbm/libquantum memory-bound with large
 * footprints; povray/sjeng/namd compute-bound with small hot sets),
 * and the low/high ORAM-overhead group split follows the paper's own
 * mix memberships. See DESIGN.md's substitution table.
 */

#ifndef FP_WORKLOAD_SPEC_PROFILES_HH
#define FP_WORKLOAD_SPEC_PROFILES_HH

#include <string>
#include <vector>

#include "workload/synthetic.hh"

namespace fp::workload
{

/** Profile of a SPEC 2006 benchmark by short name ("mcf", ...). */
const WorkloadProfile &specProfile(const std::string &name);

/** All modelled SPEC benchmark names. */
std::vector<std::string> specNames();

/** The paper's low-ORAM-overhead group (LG). */
std::vector<std::string> lowOverheadGroup();

/** The paper's high-ORAM-overhead group (HG). */
std::vector<std::string> highOverheadGroup();

} // namespace fp::workload

#endif // FP_WORKLOAD_SPEC_PROFILES_HH
