#include "workload/synthetic.hh"

#include <algorithm>

#include "util/logging.hh"

namespace fp::workload
{

AddressStream::AddressStream(const WorkloadProfile &profile,
                             BlockAddr base, Rng rng)
    : profile_(profile), base_(base), rng_(rng),
      zipf_(std::max<std::uint64_t>(profile.workingSetBlocks, 1),
            profile.zipfAlpha)
{
    fp_assert(profile.workingSetBlocks > 0,
              "workload '%s': empty working set",
              profile.name.c_str());
}

MemRequest
AddressStream::next()
{
    MemRequest req;
    req.isWrite = rng_.chance(profile_.writeFraction);

    if (seqLeft_ > 0) {
        // Continue the current sequential run.
        --seqLeft_;
        seqPos_ = (seqPos_ + 1) % profile_.workingSetBlocks;
        req.addr = base_ + seqPos_;
        return req;
    }

    if (rng_.chance(profile_.seqFraction)) {
        // Start a new sequential run at a Zipf-chosen position.
        seqPos_ = zipf_.sample(rng_);
        seqLeft_ = rng_.geometric(profile_.seqRunLength);
        req.addr = base_ + seqPos_;
        return req;
    }

    req.addr = base_ + zipf_.sample(rng_);
    return req;
}

} // namespace fp::workload
