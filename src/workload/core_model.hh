/**
 * @file
 * A parametric CPU core model that replays a synthetic LLC-miss
 * stream against a memory sink.
 *
 * The model abstracts the paper's gem5 out-of-order Alpha cores down
 * to the two properties the ORAM evaluation depends on: how much
 * compute time separates LLC misses (the workload profile's miss
 * interval, drawn geometrically) and how many misses can be
 * outstanding at once (memory-level parallelism; 1 models an
 * in-order core, 8 the paper's 8-way out-of-order core).
 *
 * A core is done when it has issued its request budget and all
 * responses have returned; the finish tick of the slowest core is
 * the workload's execution time (Figure 14's slowdown metric).
 */

#ifndef FP_WORKLOAD_CORE_MODEL_HH
#define FP_WORKLOAD_CORE_MODEL_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "util/event_queue.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "workload/synthetic.hh"

namespace fp::workload
{

/**
 * Memory-side interface the core issues misses into; implemented by
 * the ORAM controller adapter and the insecure-DRAM adapter in
 * sim/system.
 */
class MemorySink
{
  public:
    using ResponseFn = std::function<void(Tick)>;

    virtual ~MemorySink() = default;

    /** True if a request would be accepted right now. */
    virtual bool canAccept() const = 0;

    /**
     * Issue one miss. @p on_response fires at data return.
     * @return false if the sink is full (retry later).
     */
    virtual bool access(const MemRequest &req,
                        ResponseFn on_response) = 0;
};

struct CoreParams
{
    unsigned coreId = 0;
    /** CPU clock period in ticks (2 GHz -> 500). */
    Tick cpuPeriodTicks = 500;
    /** Maximum outstanding LLC misses (1 = in-order, 8 = OoO). */
    unsigned maxOutstanding = 8;
    /** Misses to issue before the core finishes. */
    std::uint64_t totalRequests = 10000;
    /** Retry delay when the sink refuses a request, in CPU cycles. */
    unsigned retryCycles = 50;
};

class CoreModel
{
  public:
    CoreModel(const CoreParams &params, const WorkloadProfile &profile,
              BlockAddr region_base, std::uint64_t seed,
              EventQueue &eq, MemorySink &sink);

    /** Begin issuing at the current simulation time. */
    void start();

    bool done() const
    {
        return issued_ == params_.totalRequests && outstanding_ == 0;
    }

    /** Tick at which the core completed its budget (valid if done). */
    Tick finishTick() const { return finishTick_; }

    std::uint64_t issued() const { return issued_; }
    const fp::Histogram &missLatency() const { return missLatency_; }
    const WorkloadProfile &profile() const
    {
        return stream_.profile();
    }

    /** Called by the owner when all cores finish (optional hook). */
    void setOnDone(std::function<void()> fn) { onDone_ = std::move(fn); }

  private:
    void tryIssue();
    void scheduleTry(Tick when);
    void onResponse(Tick issue_tick);

    CoreParams params_;
    AddressStream stream_;
    EventQueue &eq_;
    MemorySink &sink_;
    Rng rng_;

    std::uint64_t issued_ = 0;
    unsigned outstanding_ = 0;
    Tick nextIssueAt_ = 0;
    bool tryScheduled_ = false;
    Tick finishTick_ = 0;
    std::function<void()> onDone_;

    fp::Histogram missLatency_;
};

} // namespace fp::workload

#endif // FP_WORKLOAD_CORE_MODEL_HH
