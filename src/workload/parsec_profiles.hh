/**
 * @file
 * PARSEC-shaped multi-threaded workload profiles (paper Figure 19:
 * 4-thread runs, one thread per core, shared address space).
 *
 * Unlike the multi-programmed SPEC mixes, all threads of a PARSEC
 * workload draw from one shared working set; the per-thread profile
 * is identical. As with the SPEC table, parameters are synthetic
 * calibrations of the well-known relative behaviours (canneal and
 * streamcluster memory-bound and irregular; swaptions and
 * blackscholes compute-bound).
 */

#ifndef FP_WORKLOAD_PARSEC_PROFILES_HH
#define FP_WORKLOAD_PARSEC_PROFILES_HH

#include <string>
#include <vector>

#include "workload/synthetic.hh"

namespace fp::workload
{

/** Per-thread profile of a PARSEC benchmark. */
const WorkloadProfile &parsecProfile(const std::string &name);

/** All modelled PARSEC benchmark names. */
std::vector<std::string> parsecNames();

/**
 * Profiles for an n-thread run: n copies of the per-thread profile;
 * the System gives them a shared base address.
 */
std::vector<WorkloadProfile>
parsecThreads(const std::string &name, unsigned threads);

} // namespace fp::workload

#endif // FP_WORKLOAD_PARSEC_PROFILES_HH
