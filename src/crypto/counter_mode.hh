/**
 * @file
 * Counter-mode probabilistic encryption over byte buffers, built on
 * SPECK-64/128.
 *
 * Path ORAM requires that any two encrypted blocks be computationally
 * indistinguishable even when their plaintexts are identical (the
 * dummy blocks depend on this). Counter mode achieves this with a
 * per-encryption counter: the keystream is
 *
 *     ks[i] = E_k(nonce || counter || i)
 *
 * and every re-encryption bumps the counter, so the same plaintext at
 * the same tree position encrypts differently on every write-back.
 * The (nonce, counter) pair is stored alongside the ciphertext, which
 * is what real counter-mode secure-processor designs do [Shi et al.,
 * ISCA'05].
 */

#ifndef FP_CRYPTO_COUNTER_MODE_HH
#define FP_CRYPTO_COUNTER_MODE_HH

#include <cstdint>
#include <vector>

#include "crypto/speck.hh"

namespace fp::crypto
{

/** Ciphertext with the metadata needed to decrypt it. */
struct SealedBlock
{
    std::uint64_t nonce = 0;    //!< Typically the physical slot id.
    std::uint64_t counter = 0;  //!< Bumped on every re-encryption.
    std::vector<std::uint8_t> bytes;
};

class CounterModeCipher
{
  public:
    explicit CounterModeCipher(std::uint64_t key_seed);

    /**
     * Encrypt @p plaintext under (@p nonce, fresh counter). The
     * internal global counter guarantees no (nonce, counter) pair is
     * ever reused by this cipher instance.
     */
    SealedBlock encrypt(const std::vector<std::uint8_t> &plaintext,
                        std::uint64_t nonce);

    /** Decrypt a sealed block. */
    std::vector<std::uint8_t> decrypt(const SealedBlock &sealed) const;

    /** Number of encryptions performed (for stats/tests). */
    std::uint64_t encryptionCount() const { return nextCounter_; }

  private:
    /** XOR @p data with the keystream for (nonce, counter). */
    void applyKeystream(std::vector<std::uint8_t> &data,
                        std::uint64_t nonce,
                        std::uint64_t counter) const;

    Speck64 cipher_;
    std::uint64_t nextCounter_ = 1;
};

} // namespace fp::crypto

#endif // FP_CRYPTO_COUNTER_MODE_HH
