#include "crypto/speck.hh"

namespace fp::crypto
{

namespace
{

constexpr std::uint32_t
ror(std::uint32_t x, int r)
{
    return (x >> r) | (x << (32 - r));
}

constexpr std::uint32_t
rol(std::uint32_t x, int r)
{
    return (x << r) | (x >> (32 - r));
}

// One SPECK round on the (x, y) state with round key k.
inline void
round(std::uint32_t &x, std::uint32_t &y, std::uint32_t k)
{
    x = ror(x, 8);
    x += y;
    x ^= k;
    y = rol(y, 3);
    y ^= x;
}

inline void
invRound(std::uint32_t &x, std::uint32_t &y, std::uint32_t k)
{
    y ^= x;
    y = ror(y, 3);
    x ^= k;
    x -= y;
    x = rol(x, 8);
}

} // anonymous namespace

Speck64::Speck64(const std::array<std::uint32_t, 4> &key)
{
    expandKey(key);
}

Speck64::Speck64(std::uint64_t seed)
{
    // Derive four key words with splitmix64-style mixing so distinct
    // seeds give unrelated keys.
    std::array<std::uint32_t, 4> key{};
    std::uint64_t x = seed;
    for (auto &w : key) {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        w = static_cast<std::uint32_t>(z ^ (z >> 31));
    }
    expandKey(key);
}

void
Speck64::expandKey(const std::array<std::uint32_t, 4> &key)
{
    // Key words: k = key[0], l[0..2] = key[1..3]. The schedule
    // writes l[i + 3] for i up to numRounds - 1, so the array needs
    // numRounds + 3 entries (the last write is never read back).
    std::uint32_t k = key[0];
    std::uint32_t l[numRounds + 3];
    l[0] = key[1];
    l[1] = key[2];
    l[2] = key[3];
    for (int i = 0; i < numRounds; ++i) {
        roundKeys_[static_cast<std::size_t>(i)] = k;
        std::uint32_t next_l = l[i];
        round(next_l, k, static_cast<std::uint32_t>(i));
        // round() updates (x=next_l, y=k): store the expanded word.
        l[i + 3] = next_l;
    }
}

std::uint64_t
Speck64::encryptBlock(std::uint64_t plaintext) const
{
    auto x = static_cast<std::uint32_t>(plaintext >> 32);
    auto y = static_cast<std::uint32_t>(plaintext);
    for (int i = 0; i < numRounds; ++i)
        round(x, y, roundKeys_[static_cast<std::size_t>(i)]);
    return (static_cast<std::uint64_t>(x) << 32) | y;
}

std::uint64_t
Speck64::decryptBlock(std::uint64_t ciphertext) const
{
    auto x = static_cast<std::uint32_t>(ciphertext >> 32);
    auto y = static_cast<std::uint32_t>(ciphertext);
    for (int i = numRounds - 1; i >= 0; --i)
        invRound(x, y, roundKeys_[static_cast<std::size_t>(i)]);
    return (static_cast<std::uint64_t>(x) << 32) | y;
}

} // namespace fp::crypto
