/**
 * @file
 * SPECK-64/128 block cipher (Beaulieu et al., NSA 2013).
 *
 * The paper's ORAM controller encrypts every bucket with a hardware
 * counter-mode AES unit. We stand in a lightweight ARX cipher for the
 * software model: it gives real probabilistic encryption semantics
 * (identical plaintexts encrypt to different ciphertexts under
 * different counters) at a cost low enough that functional tests can
 * encrypt every block. The timing model treats encryption as free,
 * matching the paper's assumption of a pipelined hardware unit.
 *
 * SPECK-64/128: 64-bit block (two 32-bit words), 128-bit key (four
 * 32-bit words), 27 rounds.
 */

#ifndef FP_CRYPTO_SPECK_HH
#define FP_CRYPTO_SPECK_HH

#include <array>
#include <cstdint>

namespace fp::crypto
{

class Speck64
{
  public:
    static constexpr int numRounds = 27;

    /** Key schedule from a 128-bit key given as four 32-bit words. */
    explicit Speck64(const std::array<std::uint32_t, 4> &key);

    /** Convenience: derive the four key words from a 64-bit seed. */
    explicit Speck64(std::uint64_t seed);

    /** Encrypt a 64-bit block given as (hi, lo) word pair. */
    std::uint64_t encryptBlock(std::uint64_t plaintext) const;

    /** Decrypt a 64-bit block. */
    std::uint64_t decryptBlock(std::uint64_t ciphertext) const;

  private:
    void expandKey(const std::array<std::uint32_t, 4> &key);

    std::array<std::uint32_t, numRounds> roundKeys_;
};

} // namespace fp::crypto

#endif // FP_CRYPTO_SPECK_HH
