#include "crypto/counter_mode.hh"

namespace fp::crypto
{

CounterModeCipher::CounterModeCipher(std::uint64_t key_seed)
    : cipher_(key_seed)
{
}

SealedBlock
CounterModeCipher::encrypt(const std::vector<std::uint8_t> &plaintext,
                           std::uint64_t nonce)
{
    SealedBlock sealed;
    sealed.nonce = nonce;
    sealed.counter = nextCounter_++;
    sealed.bytes = plaintext;
    applyKeystream(sealed.bytes, sealed.nonce, sealed.counter);
    return sealed;
}

std::vector<std::uint8_t>
CounterModeCipher::decrypt(const SealedBlock &sealed) const
{
    std::vector<std::uint8_t> plain = sealed.bytes;
    applyKeystream(plain, sealed.nonce, sealed.counter);
    return plain;
}

void
CounterModeCipher::applyKeystream(std::vector<std::uint8_t> &data,
                                  std::uint64_t nonce,
                                  std::uint64_t counter) const
{
    // Each keystream block covers 8 bytes. The cipher input mixes the
    // nonce, the per-encryption counter, and the intra-block index so
    // every byte position gets an independent keystream.
    const std::size_t n = data.size();
    for (std::size_t off = 0; off < n; off += 8) {
        std::uint64_t input = nonce * 0x9e3779b97f4a7c15ULL
            ^ (counter << 20)
            ^ static_cast<std::uint64_t>(off / 8);
        std::uint64_t ks = cipher_.encryptBlock(input);
        for (std::size_t i = 0; i < 8 && off + i < n; ++i) {
            data[off + i] ^=
                static_cast<std::uint8_t>(ks >> (8 * i));
        }
    }
}

} // namespace fp::crypto
